#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/perf_counters.hpp"
#include "common/rng.hpp"
#include "geometry/convex.hpp"
#include "voronoi/orderk.hpp"
#include "voronoi/sites.hpp"
#include "wsn/spatial_grid.hpp"

namespace laacad::vor {
namespace {

using geom::Ring;
using geom::Vec2;

Ring window100() { return {{0, 0}, {100, 0}, {100, 100}, {0, 100}}; }

// Membership oracle from Proposition 1.
bool in_region_brute(const std::vector<Vec2>& sites, int i, int k, Vec2 v) {
  return closer_count(sites, i, v) <= k - 1;
}

bool in_cells(const std::vector<OrderKCell>& cells, Vec2 v, double eps) {
  for (const auto& c : cells)
    if (geom::contains_point(c.poly, v, eps)) return true;
  return false;
}

// ------------------------------------------------------------- helpers ----

TEST(Sites, SeparateSitesPushesApartCoincident) {
  std::vector<Vec2> pts = {{10, 10}, {10, 10}, {10 + 1e-12, 10}, {50, 50}};
  auto sep = separate_sites(pts);
  for (std::size_t a = 0; a < sep.size(); ++a)
    for (std::size_t b = a + 1; b < sep.size(); ++b)
      EXPECT_GE(geom::dist(sep[a], sep[b]), kMinSiteSeparation * 0.9);
  // Far points untouched.
  EXPECT_EQ(sep[3], Vec2(50, 50));
}

TEST(Sites, KNearestBrute) {
  std::vector<Vec2> pts = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  auto kn = k_nearest_brute(pts, {0.1, 0}, 2);
  EXPECT_EQ(kn, (std::vector<int>{0, 1}));
}

TEST(Sites, CloserCount) {
  std::vector<Vec2> pts = {{0, 0}, {10, 0}, {20, 0}};
  EXPECT_EQ(closer_count(pts, 2, {0, 0}), 2);
  EXPECT_EQ(closer_count(pts, 0, {0, 0}), 0);
  EXPECT_EQ(closer_count(pts, 1, {9, 0}), 0);
}

// ------------------------------------------------------- order-1 cells ----

TEST(Order1, TwoSitesSplitWindow) {
  std::vector<Vec2> sites = {{25, 50}, {75, 50}};
  Ring c0 = order_1_cell(sites, 0, window100());
  Ring c1 = order_1_cell(sites, 1, window100());
  EXPECT_NEAR(geom::area(c0), 5000.0, 1e-6);
  EXPECT_NEAR(geom::area(c1), 5000.0, 1e-6);
  EXPECT_TRUE(geom::contains_point(c0, {10, 50}));
  EXPECT_FALSE(geom::contains_point(c0, {90, 50}));
}

TEST(Order1, SingleSiteOwnsWindow) {
  std::vector<Vec2> sites = {{50, 50}};
  Ring c = order_1_cell(sites, 0, window100());
  EXPECT_NEAR(geom::area(c), 10000.0, 1e-6);
}

TEST(Order1, CellsPartitionWindow) {
  laacad::Rng rng(21);
  std::vector<Vec2> sites;
  for (int i = 0; i < 25; ++i)
    sites.push_back({rng.uniform(5, 95), rng.uniform(5, 95)});
  double total = 0.0;
  for (int i = 0; i < 25; ++i)
    total += geom::area(order_1_cell(sites, i, window100()));
  EXPECT_NEAR(total, 10000.0, 1e-3);
}

// ----------------------------------------------- dominating regions -------

TEST(DominatingRegion, K2TwoSitesIsWholeWindow) {
  // With only two sites and k = 2, every point is dominated by both.
  std::vector<Vec2> sites = {{25, 50}, {75, 50}};
  auto cells = dominating_region_cells(sites, 0, 2, window100());
  double total = 0.0;
  for (const auto& c : cells) total += c.area();
  EXPECT_NEAR(total, 10000.0, 1e-6);
}

TEST(DominatingRegion, ContainsOwnSite) {
  laacad::Rng rng(31);
  std::vector<Vec2> sites;
  for (int i = 0; i < 20; ++i)
    sites.push_back({rng.uniform(5, 95), rng.uniform(5, 95)});
  for (int k = 1; k <= 4; ++k) {
    auto cells = dominating_region_cells(sites, 7, k, window100());
    EXPECT_TRUE(in_cells(cells, sites[7], 1e-6)) << "k=" << k;
  }
}

TEST(DominatingRegion, GrowsWithK) {
  laacad::Rng rng(32);
  std::vector<Vec2> sites;
  for (int i = 0; i < 20; ++i)
    sites.push_back({rng.uniform(5, 95), rng.uniform(5, 95)});
  double prev = 0.0;
  for (int k = 1; k <= 5; ++k) {
    auto cells = dominating_region_cells(sites, 3, k, window100());
    double a = 0.0;
    for (const auto& c : cells) a += c.area();
    EXPECT_GT(a, prev - 1e-9) << "k=" << k;
    prev = a;
  }
}

TEST(DominatingRegion, CellsAreConvexAndCarryGeneratorI) {
  laacad::Rng rng(33);
  std::vector<Vec2> sites;
  for (int i = 0; i < 30; ++i)
    sites.push_back({rng.uniform(5, 95), rng.uniform(5, 95)});
  auto cells = dominating_region_cells(sites, 11, 3, window100());
  ASSERT_FALSE(cells.empty());
  for (const auto& c : cells) {
    EXPECT_EQ(c.gens.size(), 3u);
    EXPECT_TRUE(std::binary_search(c.gens.begin(), c.gens.end(), 11));
    EXPECT_TRUE(geom::is_convex(c.poly)) << "cell with " << c.poly.size()
                                         << " vertices";
  }
}

// The heart of the construction: BFS output must match the Prop.-1
// membership oracle at random sample points, for many k and seeds.
struct RegionCase {
  int seed;
  int k;
};

class RegionProperty : public ::testing::TestWithParam<RegionCase> {};

TEST_P(RegionProperty, MatchesBruteForceMembership) {
  const auto param = GetParam();
  laacad::Rng rng(param.seed);
  std::vector<Vec2> sites;
  const int n = 12 + rng.uniform_int(0, 20);
  for (int i = 0; i < n; ++i)
    sites.push_back({rng.uniform(2, 98), rng.uniform(2, 98)});
  sites = separate_sites(sites);
  const int i = rng.uniform_int(0, n - 1);

  auto cells = dominating_region_cells(sites, i, param.k, window100());

  int checked = 0;
  for (int t = 0; t < 600; ++t) {
    const Vec2 v{rng.uniform(0, 100), rng.uniform(0, 100)};
    const bool brute = in_region_brute(sites, i, param.k, v);
    const bool poly = in_cells(cells, v, 1e-6);
    // Skip points too close to any bisector boundary (ties).
    const double di = geom::dist(sites[static_cast<size_t>(i)], v);
    bool near_tie = false;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      if (std::abs(geom::dist(sites[static_cast<size_t>(j)], v) - di) < 1e-4)
        near_tie = true;
    }
    if (near_tie) continue;
    ++checked;
    EXPECT_EQ(brute, poly) << "at " << v.x << "," << v.y << " i=" << i
                           << " k=" << param.k << " n=" << n;
  }
  EXPECT_GT(checked, 400);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RegionProperty,
    ::testing::Values(RegionCase{1, 1}, RegionCase{2, 1}, RegionCase{3, 2},
                      RegionCase{4, 2}, RegionCase{5, 3}, RegionCase{6, 3},
                      RegionCase{7, 4}, RegionCase{8, 4}, RegionCase{9, 5},
                      RegionCase{10, 6}, RegionCase{11, 8}, RegionCase{12, 2},
                      RegionCase{13, 3}, RegionCase{14, 5}, RegionCase{15, 7}),
    [](const ::testing::TestParamInfo<RegionCase>& tpi) {
      return "seed" + std::to_string(tpi.param.seed) + "_k" +
             std::to_string(tpi.param.k);
    });

// Star-shapedness (the property the BFS correctness rests on): along the
// segment from u_i to any region point, membership never flips off.
class StarShapedProperty : public ::testing::TestWithParam<int> {};

TEST_P(StarShapedProperty, MembershipMonotoneAlongRays) {
  laacad::Rng rng(500 + GetParam());
  std::vector<Vec2> sites;
  const int n = 15;
  for (int i = 0; i < n; ++i)
    sites.push_back({rng.uniform(2, 98), rng.uniform(2, 98)});
  const int i = rng.uniform_int(0, n - 1);
  const int k = 1 + rng.uniform_int(0, 4);
  const Vec2 ui = sites[static_cast<size_t>(i)];
  for (int t = 0; t < 300; ++t) {
    const Vec2 v{rng.uniform(0, 100), rng.uniform(0, 100)};
    if (!in_region_brute(sites, i, k, v)) continue;
    // All interpolants toward u_i stay in the region.
    for (double s : {0.2, 0.5, 0.8}) {
      EXPECT_TRUE(in_region_brute(sites, i, k, geom::lerp(ui, v, s)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StarShapedProperty, ::testing::Range(0, 10));

// ------------------------------------- grid path vs exhaustive path -------

// The determinism contract of the accelerated kernel: the grid-backed path
// (bounded candidate gathers, grid probes) must reproduce the exhaustive
// kernel bit for bit — identical generator sets, identical vertices, in
// identical order — for any site count, k, and window.
TEST(GridKernel, BitIdenticalToBruteKernel) {
  laacad::Rng rng(71);
  for (int round = 0; round < 6; ++round) {
    const int n = 40 + rng.uniform_int(0, 160);  // above the auto threshold
    std::vector<Vec2> sites;
    for (int i = 0; i < n; ++i)
      sites.push_back({rng.uniform(2, 198), rng.uniform(2, 198)});
    sites = separate_sites(sites);
    const Ring window = {{0, 0}, {200, 0}, {200, 200}, {0, 200}};
    const int k = 1 + rng.uniform_int(0, 3);
    const int i = rng.uniform_int(0, n - 1);

    const auto brute = dominating_region_cells_brute(sites, i, k, window);
    const auto fast = dominating_region_cells(sites, i, k, window);
    ASSERT_EQ(fast.size(), brute.size()) << "n=" << n << " k=" << k;
    for (std::size_t c = 0; c < brute.size(); ++c) {
      EXPECT_EQ(fast[c].gens, brute[c].gens) << "cell " << c;
      EXPECT_EQ(fast[c].poly, brute[c].poly) << "cell " << c;  // bitwise
    }
  }
}

TEST(GridKernel, ExplicitGridOverloadMatchesBrute) {
  // Small site sets (below the auto threshold) through the explicit-grid
  // overload: exercises the bounded gather where the grid is coarse.
  laacad::Rng rng(72);
  std::vector<Vec2> sites;
  for (int i = 0; i < 18; ++i)
    sites.push_back({rng.uniform(5, 95), rng.uniform(5, 95)});
  sites = separate_sites(sites);
  wsn::SpatialGrid grid(sites, 12.0);
  for (int k = 1; k <= 4; ++k) {
    for (int i : {0, 7, 17}) {
      const auto brute = dominating_region_cells_brute(sites, i, k, window100());
      const auto fast = dominating_region_cells(sites, grid, i, k, window100());
      ASSERT_EQ(fast.size(), brute.size()) << "i=" << i << " k=" << k;
      for (std::size_t c = 0; c < brute.size(); ++c) {
        EXPECT_EQ(fast[c].gens, brute[c].gens);
        EXPECT_EQ(fast[c].poly, brute[c].poly);
      }
    }
  }
}

// Order-k partition invariant, both kernels: the enumerated cells tile the
// window — areas sum to the window area and distinct cells have (numerically)
// zero pairwise overlap.
struct PartitionCase {
  int seed;
  int k;
  bool grid;
};

class PartitionInvariant : public ::testing::TestWithParam<PartitionCase> {};

TEST_P(PartitionInvariant, CellsTileTheWindow) {
  const auto param = GetParam();
  laacad::Rng rng(param.seed);
  const int n = 10 + rng.uniform_int(0, 10);
  std::vector<Vec2> sites;
  for (int i = 0; i < n; ++i)
    sites.push_back({rng.uniform(5, 95), rng.uniform(5, 95)});
  sites = separate_sites(sites);

  std::vector<OrderKCell> cells;
  if (param.grid) {
    wsn::SpatialGrid grid(sites, 15.0);
    cells = enumerate_order_k_cells(sites, grid, param.k, window100());
  } else {
    cells = enumerate_order_k_cells_brute(sites, param.k, window100());
  }
  ASSERT_FALSE(cells.empty());

  double total = 0.0;
  for (const auto& c : cells) total += c.area();
  EXPECT_NEAR(total, 10000.0, 1e-2) << "n=" << n << " k=" << param.k;

  // Pairwise overlap: intersect every pair of convex cells; shared edges
  // contribute degenerate slivers only.
  double overlap = 0.0;
  for (std::size_t a = 0; a < cells.size(); ++a)
    for (std::size_t b = a + 1; b < cells.size(); ++b)
      overlap +=
          geom::area(geom::sutherland_hodgman(cells[a].poly, cells[b].poly));
  EXPECT_NEAR(overlap, 0.0, 1e-2) << "n=" << n << " k=" << param.k;
}

INSTANTIATE_TEST_SUITE_P(
    BothKernels, PartitionInvariant,
    ::testing::Values(PartitionCase{81, 1, false}, PartitionCase{81, 1, true},
                      PartitionCase{82, 2, false}, PartitionCase{82, 2, true},
                      PartitionCase{83, 3, false}, PartitionCase{83, 3, true},
                      PartitionCase{84, 2, false}, PartitionCase{84, 2, true},
                      PartitionCase{85, 3, false}, PartitionCase{85, 3, true}),
    [](const ::testing::TestParamInfo<PartitionCase>& tpi) {
      return "seed" + std::to_string(tpi.param.seed) + "_k" +
             std::to_string(tpi.param.k) +
             (tpi.param.grid ? "_grid" : "_brute");
    });

// ------------------------------------------------ sliver-edge regression ---

// Near-degenerate configuration: sites nearly cocircular plus a center site
// produce order-k vertices where many cells meet through very short edges.
// The old BFS skipped every edge shorter than 10*delta without probing
// across it, so a neighbouring cell reachable only through such an edge was
// silently dropped from the traversal — the enumerated "partition" had a
// hole and dominating regions lost area. The fixed kernel probes short
// edges from both half-edge midpoints instead.
TEST(SliverEdges, NearCocircularPartitionHasNoHoles) {
  for (int seed = 0; seed < 4; ++seed) {
    laacad::Rng rng(900 + seed);
    std::vector<Vec2> sites;
    const int m = 10 + seed;
    for (int i = 0; i < m; ++i) {
      // Cocircular up to ~1e-7 jitter: far below the probe scale, so the
      // resulting diagram is packed with sliver edges.
      const double ang = 2.0 * M_PI * i / m + rng.uniform(-1e-7, 1e-7);
      sites.push_back(Vec2{50.0 + 30.0 * std::cos(ang),
                           50.0 + 30.0 * std::sin(ang)});
    }
    sites.push_back({50.0 + rng.uniform(-1e-7, 1e-7), 50.0});
    sites = separate_sites(sites);

    for (int k = 1; k <= 3; ++k) {
      for (bool grid : {false, true}) {
        std::vector<OrderKCell> cells;
        if (grid) {
          wsn::SpatialGrid g(sites, 10.0);
          cells = enumerate_order_k_cells(sites, g, k, window100());
        } else {
          cells = enumerate_order_k_cells_brute(sites, k, window100());
        }
        double total = 0.0;
        for (const auto& c : cells) total += c.area();
        EXPECT_NEAR(total, 10000.0, 1e-2)
            << "seed=" << seed << " k=" << k << " grid=" << grid;
      }
    }
  }
}

TEST(SliverEdges, RegressionLostCellOnJitteredLattice) {
  // Pinned regression config (found by searching the pre-fix kernel against
  // the fixed one): a jittered 23 m lattice, whose squares put four sites
  // nearly on a circle. At k = 2 the cell V_{2,4} — the sliver between the
  // two diagonal sites of the middle square — attaches to the rest of the
  // diagram only through edges shorter than the 10*delta probe threshold.
  // The old BFS skipped those edges and never discovered the cell: full
  // enumeration was missing {2,4}, and the dominating regions of sites 2
  // and 4 each silently lost a cell.
  const std::vector<Vec2> sites = {
      {14.999143405333413, 15.000181380951267},
      {37.999986925745873, 15.000003883196152},
      {61.000003385859358, 15.00000401939257},
      {15.000001532587362, 38.000004241566685},
      {37.999998829368671, 37.999999736047499},
      {61.000056592318181, 38.000016703859458},
      {14.999999000044021, 61.000000223783495},
  };
  const std::vector<int> lost = {2, 4};

  auto has_gens = [&](const std::vector<OrderKCell>& cells) {
    for (const auto& c : cells)
      if (c.gens == lost) return true;
    return false;
  };

  // Full enumeration recovers the sliver cell on both kernel paths.
  EXPECT_TRUE(has_gens(enumerate_order_k_cells_brute(sites, 2, window100())));
  {
    wsn::SpatialGrid grid(sites, 12.0);
    EXPECT_TRUE(has_gens(enumerate_order_k_cells(sites, grid, 2, window100())));
  }
  // Both dominating regions that own the cell traverse into it.
  EXPECT_TRUE(has_gens(dominating_region_cells(sites, 2, 2, window100())));
  EXPECT_TRUE(has_gens(dominating_region_cells(sites, 4, 2, window100())));
}

TEST(SliverEdges, DominatingRegionMatchesOracleNearDegeneracy) {
  // Membership check against the Proposition-1 oracle on the cocircular
  // configuration (sample points near ties are skipped, as everywhere).
  laacad::Rng rng(950);
  std::vector<Vec2> sites;
  const int m = 12;
  for (int i = 0; i < m; ++i) {
    const double ang = 2.0 * M_PI * i / m + rng.uniform(-1e-7, 1e-7);
    sites.push_back(
        Vec2{50.0 + 30.0 * std::cos(ang), 50.0 + 30.0 * std::sin(ang)});
  }
  sites = separate_sites(sites);
  const int n = static_cast<int>(sites.size());
  for (int k : {2, 3}) {
    const int i = 0;
    auto cells = dominating_region_cells(sites, i, k, window100());
    int checked = 0;
    for (int t = 0; t < 800; ++t) {
      const Vec2 v{rng.uniform(0, 100), rng.uniform(0, 100)};
      const double di = geom::dist(sites[0], v);
      bool near_tie = false;
      for (int j = 1; j < n; ++j) {
        if (std::abs(geom::dist(sites[static_cast<size_t>(j)], v) - di) < 1e-4)
          near_tie = true;
      }
      if (near_tie) continue;
      ++checked;
      EXPECT_EQ(in_region_brute(sites, i, k, v), in_cells(cells, v, 1e-6))
          << "k=" << k << " at " << v.x << "," << v.y;
    }
    EXPECT_GT(checked, 400);
  }
}

// --------------------------------------------------- kernel cost contract --

// The acceptance bar for the grid kernel: on the fig6-style 400-node
// configuration, the bounded candidate gather must cut site-distance
// evaluations by at least 2x against the exhaustive kernel. Deterministic
// (fixed seed, thread-local counters), so it can gate in CI.
// Keep this configuration (seed 7, 400 sites on 1 km^2, interior node,
// grid cell 50) in lockstep with fig6_sites/interior_node in
// bench/bench_micro_kernels.cpp — the CI kernel-bench job asserts the same
// 2x bar from that bench's JSON on the same regime.
TEST(GridKernel, HalvesDistanceEvalsOnFig6Config) {
  laacad::Rng rng(7);
  std::vector<Vec2> sites;
  for (int i = 0; i < 400; ++i)
    sites.push_back({rng.uniform(0, 1000), rng.uniform(0, 1000)});
  sites = separate_sites(sites);
  const Ring window = {{0, 0}, {1000, 0}, {1000, 1000}, {0, 1000}};
  // Interior-most node, as in the benches.
  int center = 0;
  double best = 1e18;
  for (int i = 0; i < 400; ++i) {
    const double d = geom::dist(sites[static_cast<size_t>(i)], {500, 500});
    if (d < best) {
      best = d;
      center = i;
    }
  }

  auto& pc = laacad::perf::counters();
  for (int k : {2, 3}) {
    pc.reset();
    const auto brute = dominating_region_cells_brute(sites, center, k, window);
    const std::uint64_t brute_evals = pc.dist2_evals;

    wsn::SpatialGrid grid(sites, 50.0);
    pc.reset();
    const auto fast = dominating_region_cells(sites, grid, center, k, window);
    const std::uint64_t grid_evals = pc.dist2_evals;

    ASSERT_EQ(fast.size(), brute.size()) << "k=" << k;
    for (std::size_t c = 0; c < brute.size(); ++c)
      EXPECT_EQ(fast[c].poly, brute[c].poly);
    EXPECT_GE(brute_evals, 2 * grid_evals)
        << "k=" << k << " brute=" << brute_evals << " grid=" << grid_evals;
  }
}

// -------------------------------------------- full-diagram enumeration ----

TEST(EnumerateCells, PartitionOfWindow) {
  laacad::Rng rng(41);
  std::vector<Vec2> sites;
  for (int i = 0; i < 15; ++i)
    sites.push_back({rng.uniform(5, 95), rng.uniform(5, 95)});
  for (int k = 1; k <= 4; ++k) {
    auto cells = enumerate_order_k_cells(sites, k, window100());
    double total = 0.0;
    std::set<std::vector<int>> unique_gens;
    for (const auto& c : cells) {
      total += c.area();
      EXPECT_TRUE(unique_gens.insert(c.gens).second) << "duplicate cell";
    }
    EXPECT_NEAR(total, 10000.0, 1.0) << "k=" << k;
  }
}

TEST(EnumerateCells, CountMatchesTheoryBound) {
  // Number of order-k cells is O(k(N-k)) (Lee 1982); for small point sets
  // the count must sit between N choose-free lower bounds and that bound.
  laacad::Rng rng(42);
  std::vector<Vec2> sites;
  const int n = 12;
  for (int i = 0; i < n; ++i)
    sites.push_back({rng.uniform(5, 95), rng.uniform(5, 95)});
  for (int k = 1; k <= 4; ++k) {
    auto cells = enumerate_order_k_cells(sites, k, window100());
    EXPECT_GE(static_cast<int>(cells.size()), n - k);
    EXPECT_LE(static_cast<int>(cells.size()), 6 * k * (n - k) + 8);
  }
}

TEST(EnumerateCells, Order1CellCountEqualsSites) {
  laacad::Rng rng(43);
  std::vector<Vec2> sites;
  for (int i = 0; i < 10; ++i)
    sites.push_back({rng.uniform(10, 90), rng.uniform(10, 90)});
  auto cells = enumerate_order_k_cells(sites, 1, window100());
  EXPECT_EQ(cells.size(), 10u);
}

TEST(EnumerateCells, DominatingRegionIsUnionOfEnumerated) {
  laacad::Rng rng(44);
  std::vector<Vec2> sites;
  for (int i = 0; i < 14; ++i)
    sites.push_back({rng.uniform(5, 95), rng.uniform(5, 95)});
  const int i = 4, k = 3;
  auto all = enumerate_order_k_cells(sites, k, window100());
  double expect = 0.0;
  for (const auto& c : all)
    if (std::binary_search(c.gens.begin(), c.gens.end(), i)) expect += c.area();
  auto mine = dominating_region_cells(sites, i, k, window100());
  double got = 0.0;
  for (const auto& c : mine) got += c.area();
  EXPECT_NEAR(got, expect, 1e-3);
}

}  // namespace
}  // namespace laacad::vor
