#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "geometry/convex.hpp"
#include "voronoi/orderk.hpp"
#include "voronoi/sites.hpp"

namespace laacad::vor {
namespace {

using geom::Ring;
using geom::Vec2;

Ring window100() { return {{0, 0}, {100, 0}, {100, 100}, {0, 100}}; }

// Membership oracle from Proposition 1.
bool in_region_brute(const std::vector<Vec2>& sites, int i, int k, Vec2 v) {
  return closer_count(sites, i, v) <= k - 1;
}

bool in_cells(const std::vector<OrderKCell>& cells, Vec2 v, double eps) {
  for (const auto& c : cells)
    if (geom::contains_point(c.poly, v, eps)) return true;
  return false;
}

// ------------------------------------------------------------- helpers ----

TEST(Sites, SeparateSitesPushesApartCoincident) {
  std::vector<Vec2> pts = {{10, 10}, {10, 10}, {10 + 1e-12, 10}, {50, 50}};
  auto sep = separate_sites(pts);
  for (std::size_t a = 0; a < sep.size(); ++a)
    for (std::size_t b = a + 1; b < sep.size(); ++b)
      EXPECT_GE(geom::dist(sep[a], sep[b]), kMinSiteSeparation * 0.9);
  // Far points untouched.
  EXPECT_EQ(sep[3], Vec2(50, 50));
}

TEST(Sites, KNearestBrute) {
  std::vector<Vec2> pts = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  auto kn = k_nearest_brute(pts, {0.1, 0}, 2);
  EXPECT_EQ(kn, (std::vector<int>{0, 1}));
}

TEST(Sites, CloserCount) {
  std::vector<Vec2> pts = {{0, 0}, {10, 0}, {20, 0}};
  EXPECT_EQ(closer_count(pts, 2, {0, 0}), 2);
  EXPECT_EQ(closer_count(pts, 0, {0, 0}), 0);
  EXPECT_EQ(closer_count(pts, 1, {9, 0}), 0);
}

// ------------------------------------------------------- order-1 cells ----

TEST(Order1, TwoSitesSplitWindow) {
  std::vector<Vec2> sites = {{25, 50}, {75, 50}};
  Ring c0 = order_1_cell(sites, 0, window100());
  Ring c1 = order_1_cell(sites, 1, window100());
  EXPECT_NEAR(geom::area(c0), 5000.0, 1e-6);
  EXPECT_NEAR(geom::area(c1), 5000.0, 1e-6);
  EXPECT_TRUE(geom::contains_point(c0, {10, 50}));
  EXPECT_FALSE(geom::contains_point(c0, {90, 50}));
}

TEST(Order1, SingleSiteOwnsWindow) {
  std::vector<Vec2> sites = {{50, 50}};
  Ring c = order_1_cell(sites, 0, window100());
  EXPECT_NEAR(geom::area(c), 10000.0, 1e-6);
}

TEST(Order1, CellsPartitionWindow) {
  laacad::Rng rng(21);
  std::vector<Vec2> sites;
  for (int i = 0; i < 25; ++i)
    sites.push_back({rng.uniform(5, 95), rng.uniform(5, 95)});
  double total = 0.0;
  for (int i = 0; i < 25; ++i)
    total += geom::area(order_1_cell(sites, i, window100()));
  EXPECT_NEAR(total, 10000.0, 1e-3);
}

// ----------------------------------------------- dominating regions -------

TEST(DominatingRegion, K2TwoSitesIsWholeWindow) {
  // With only two sites and k = 2, every point is dominated by both.
  std::vector<Vec2> sites = {{25, 50}, {75, 50}};
  auto cells = dominating_region_cells(sites, 0, 2, window100());
  double total = 0.0;
  for (const auto& c : cells) total += c.area();
  EXPECT_NEAR(total, 10000.0, 1e-6);
}

TEST(DominatingRegion, ContainsOwnSite) {
  laacad::Rng rng(31);
  std::vector<Vec2> sites;
  for (int i = 0; i < 20; ++i)
    sites.push_back({rng.uniform(5, 95), rng.uniform(5, 95)});
  for (int k = 1; k <= 4; ++k) {
    auto cells = dominating_region_cells(sites, 7, k, window100());
    EXPECT_TRUE(in_cells(cells, sites[7], 1e-6)) << "k=" << k;
  }
}

TEST(DominatingRegion, GrowsWithK) {
  laacad::Rng rng(32);
  std::vector<Vec2> sites;
  for (int i = 0; i < 20; ++i)
    sites.push_back({rng.uniform(5, 95), rng.uniform(5, 95)});
  double prev = 0.0;
  for (int k = 1; k <= 5; ++k) {
    auto cells = dominating_region_cells(sites, 3, k, window100());
    double a = 0.0;
    for (const auto& c : cells) a += c.area();
    EXPECT_GT(a, prev - 1e-9) << "k=" << k;
    prev = a;
  }
}

TEST(DominatingRegion, CellsAreConvexAndCarryGeneratorI) {
  laacad::Rng rng(33);
  std::vector<Vec2> sites;
  for (int i = 0; i < 30; ++i)
    sites.push_back({rng.uniform(5, 95), rng.uniform(5, 95)});
  auto cells = dominating_region_cells(sites, 11, 3, window100());
  ASSERT_FALSE(cells.empty());
  for (const auto& c : cells) {
    EXPECT_EQ(c.gens.size(), 3u);
    EXPECT_TRUE(std::binary_search(c.gens.begin(), c.gens.end(), 11));
    EXPECT_TRUE(geom::is_convex(c.poly)) << "cell with " << c.poly.size()
                                         << " vertices";
  }
}

// The heart of the construction: BFS output must match the Prop.-1
// membership oracle at random sample points, for many k and seeds.
struct RegionCase {
  int seed;
  int k;
};

class RegionProperty : public ::testing::TestWithParam<RegionCase> {};

TEST_P(RegionProperty, MatchesBruteForceMembership) {
  const auto param = GetParam();
  laacad::Rng rng(param.seed);
  std::vector<Vec2> sites;
  const int n = 12 + rng.uniform_int(0, 20);
  for (int i = 0; i < n; ++i)
    sites.push_back({rng.uniform(2, 98), rng.uniform(2, 98)});
  sites = separate_sites(sites);
  const int i = rng.uniform_int(0, n - 1);

  auto cells = dominating_region_cells(sites, i, param.k, window100());

  int checked = 0;
  for (int t = 0; t < 600; ++t) {
    const Vec2 v{rng.uniform(0, 100), rng.uniform(0, 100)};
    const bool brute = in_region_brute(sites, i, param.k, v);
    const bool poly = in_cells(cells, v, 1e-6);
    // Skip points too close to any bisector boundary (ties).
    const double di = geom::dist(sites[static_cast<size_t>(i)], v);
    bool near_tie = false;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      if (std::abs(geom::dist(sites[static_cast<size_t>(j)], v) - di) < 1e-4)
        near_tie = true;
    }
    if (near_tie) continue;
    ++checked;
    EXPECT_EQ(brute, poly) << "at " << v.x << "," << v.y << " i=" << i
                           << " k=" << param.k << " n=" << n;
  }
  EXPECT_GT(checked, 400);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RegionProperty,
    ::testing::Values(RegionCase{1, 1}, RegionCase{2, 1}, RegionCase{3, 2},
                      RegionCase{4, 2}, RegionCase{5, 3}, RegionCase{6, 3},
                      RegionCase{7, 4}, RegionCase{8, 4}, RegionCase{9, 5},
                      RegionCase{10, 6}, RegionCase{11, 8}, RegionCase{12, 2},
                      RegionCase{13, 3}, RegionCase{14, 5}, RegionCase{15, 7}),
    [](const ::testing::TestParamInfo<RegionCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_k" +
             std::to_string(info.param.k);
    });

// Star-shapedness (the property the BFS correctness rests on): along the
// segment from u_i to any region point, membership never flips off.
class StarShapedProperty : public ::testing::TestWithParam<int> {};

TEST_P(StarShapedProperty, MembershipMonotoneAlongRays) {
  laacad::Rng rng(500 + GetParam());
  std::vector<Vec2> sites;
  const int n = 15;
  for (int i = 0; i < n; ++i)
    sites.push_back({rng.uniform(2, 98), rng.uniform(2, 98)});
  const int i = rng.uniform_int(0, n - 1);
  const int k = 1 + rng.uniform_int(0, 4);
  const Vec2 ui = sites[static_cast<size_t>(i)];
  for (int t = 0; t < 300; ++t) {
    const Vec2 v{rng.uniform(0, 100), rng.uniform(0, 100)};
    if (!in_region_brute(sites, i, k, v)) continue;
    // All interpolants toward u_i stay in the region.
    for (double s : {0.2, 0.5, 0.8}) {
      EXPECT_TRUE(in_region_brute(sites, i, k, geom::lerp(ui, v, s)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StarShapedProperty, ::testing::Range(0, 10));

// -------------------------------------------- full-diagram enumeration ----

TEST(EnumerateCells, PartitionOfWindow) {
  laacad::Rng rng(41);
  std::vector<Vec2> sites;
  for (int i = 0; i < 15; ++i)
    sites.push_back({rng.uniform(5, 95), rng.uniform(5, 95)});
  for (int k = 1; k <= 4; ++k) {
    auto cells = enumerate_order_k_cells(sites, k, window100());
    double total = 0.0;
    std::set<std::vector<int>> unique_gens;
    for (const auto& c : cells) {
      total += c.area();
      EXPECT_TRUE(unique_gens.insert(c.gens).second) << "duplicate cell";
    }
    EXPECT_NEAR(total, 10000.0, 1.0) << "k=" << k;
  }
}

TEST(EnumerateCells, CountMatchesTheoryBound) {
  // Number of order-k cells is O(k(N-k)) (Lee 1982); for small point sets
  // the count must sit between N choose-free lower bounds and that bound.
  laacad::Rng rng(42);
  std::vector<Vec2> sites;
  const int n = 12;
  for (int i = 0; i < n; ++i)
    sites.push_back({rng.uniform(5, 95), rng.uniform(5, 95)});
  for (int k = 1; k <= 4; ++k) {
    auto cells = enumerate_order_k_cells(sites, k, window100());
    EXPECT_GE(static_cast<int>(cells.size()), n - k);
    EXPECT_LE(static_cast<int>(cells.size()), 6 * k * (n - k) + 8);
  }
}

TEST(EnumerateCells, Order1CellCountEqualsSites) {
  laacad::Rng rng(43);
  std::vector<Vec2> sites;
  for (int i = 0; i < 10; ++i)
    sites.push_back({rng.uniform(10, 90), rng.uniform(10, 90)});
  auto cells = enumerate_order_k_cells(sites, 1, window100());
  EXPECT_EQ(cells.size(), 10u);
}

TEST(EnumerateCells, DominatingRegionIsUnionOfEnumerated) {
  laacad::Rng rng(44);
  std::vector<Vec2> sites;
  for (int i = 0; i < 14; ++i)
    sites.push_back({rng.uniform(5, 95), rng.uniform(5, 95)});
  const int i = 4, k = 3;
  auto all = enumerate_order_k_cells(sites, k, window100());
  double expect = 0.0;
  for (const auto& c : all)
    if (std::binary_search(c.gens.begin(), c.gens.end(), i)) expect += c.area();
  auto mine = dominating_region_cells(sites, i, k, window100());
  double got = 0.0;
  for (const auto& c : mine) got += c.area();
  EXPECT_NEAR(got, expect, 1e-3);
}

}  // namespace
}  // namespace laacad::vor
