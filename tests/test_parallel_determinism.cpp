// Determinism property of the parallel round loop: for both region
// providers, the engine must produce bit-identical trajectories and
// per-round metrics for num_threads in {1, 2, 8}. This is the contract that
// makes the thread count a pure performance knob.
#include <gtest/gtest.h>

#include <vector>

#include "laacad/engine.hpp"
#include "laacad/region_provider.hpp"
#include "wsn/deployment.hpp"

namespace laacad::core {
namespace {

using geom::Vec2;

struct RunRecord {
  std::vector<RoundMetrics> history;
  std::vector<Vec2> final_positions;
  std::vector<double> final_ranges;
};

RunRecord run_engine(const wsn::Domain& domain,
                     const std::vector<Vec2>& initial, double gamma,
                     LaacadConfig cfg) {
  wsn::Network net(&domain, initial, gamma);
  cfg.retain_history = true;  // the comparison walks the full round record
  Engine engine(net, cfg);
  RunRecord rec;
  RunResult res = engine.run();
  rec.history = std::move(res.history);
  rec.final_positions = net.positions();
  for (const wsn::Node& n : net.nodes())
    rec.final_ranges.push_back(n.sensing_range);
  return rec;
}

void expect_bit_identical(const RunRecord& a, const RunRecord& b,
                          int threads) {
  ASSERT_EQ(a.history.size(), b.history.size()) << "threads=" << threads;
  for (std::size_t r = 0; r < a.history.size(); ++r) {
    const RoundMetrics& ma = a.history[r];
    const RoundMetrics& mb = b.history[r];
    EXPECT_EQ(ma.round, mb.round);
    // Exact double equality on purpose: any reordering of the reduction
    // would show up here as a ULP difference.
    EXPECT_EQ(ma.max_circumradius, mb.max_circumradius)
        << "round " << ma.round << " threads=" << threads;
    EXPECT_EQ(ma.min_circumradius, mb.min_circumradius);
    EXPECT_EQ(ma.max_hat_radius, mb.max_hat_radius);
    EXPECT_EQ(ma.max_move, mb.max_move);
    EXPECT_EQ(ma.moved, mb.moved);
    EXPECT_EQ(ma.comm.gather_requests, mb.comm.gather_requests);
    EXPECT_EQ(ma.comm.node_reports, mb.comm.node_reports);
    EXPECT_EQ(ma.comm.max_hops_used, mb.comm.max_hops_used);
  }
  ASSERT_EQ(a.final_positions.size(), b.final_positions.size());
  for (std::size_t i = 0; i < a.final_positions.size(); ++i) {
    EXPECT_EQ(a.final_positions[i].x, b.final_positions[i].x)
        << "node " << i << " threads=" << threads;
    EXPECT_EQ(a.final_positions[i].y, b.final_positions[i].y);
    EXPECT_EQ(a.final_ranges[i], b.final_ranges[i]);
  }
}

TEST(ParallelDeterminism, GlobalProviderIdenticalAcrossThreadCounts) {
  wsn::Domain d = wsn::Domain::rectangle(300, 300);
  Rng rng(42);
  const auto initial = wsn::deploy_uniform(d, 40, rng);

  LaacadConfig base;
  base.k = 2;
  base.epsilon = 1.0;
  base.max_rounds = 60;

  LaacadConfig serial = base;
  serial.num_threads = 1;
  const RunRecord reference = run_engine(d, initial, 90.0, serial);
  ASSERT_FALSE(reference.history.empty());

  for (int threads : {2, 8}) {
    LaacadConfig cfg = base;
    cfg.num_threads = threads;
    const RunRecord parallel = run_engine(d, initial, 90.0, cfg);
    expect_bit_identical(reference, parallel, threads);
  }
}

TEST(ParallelDeterminism, LocalizedProviderIdenticalAcrossThreadCounts) {
  wsn::Domain d = wsn::Domain::rectangle(200, 200);
  Rng rng(43);
  const auto initial = wsn::deploy_uniform(d, 30, rng);

  LaacadConfig base;
  base.k = 2;
  base.epsilon = 1.0;
  base.max_rounds = 60;
  base.localized.max_hops = 8;
  // Noise on: exercises the per-(epoch, node) RNG streams, the part of the
  // localized provider that would break first under a shared generator.
  base.localized.frame.range_noise = 0.01;

  LaacadConfig serial = base;
  serial.num_threads = 1;
  serial.provider = make_localized_provider(serial.localized, serial.seed);
  const RunRecord reference = run_engine(d, initial, 60.0, serial);
  ASSERT_FALSE(reference.history.empty());

  for (int threads : {2, 8}) {
    LaacadConfig cfg = base;
    cfg.num_threads = threads;
    cfg.provider = make_localized_provider(cfg.localized, cfg.seed);
    const RunRecord parallel = run_engine(d, initial, 60.0, cfg);
    expect_bit_identical(reference, parallel, threads);
  }
}

TEST(ParallelDeterminism, HardwareThreadCountAlsoIdentical) {
  // num_threads = 0 (auto) must land on the same trajectory too.
  wsn::Domain d = wsn::Domain::rectangle(200, 200);
  Rng rng(44);
  const auto initial = wsn::deploy_uniform(d, 25, rng);

  LaacadConfig base;
  base.k = 1;
  base.epsilon = 1.0;
  base.max_rounds = 40;

  LaacadConfig serial = base;
  serial.num_threads = 1;
  const RunRecord reference = run_engine(d, initial, 70.0, serial);

  LaacadConfig autocfg = base;
  autocfg.num_threads = 0;
  const RunRecord parallel = run_engine(d, initial, 70.0, autocfg);
  expect_bit_identical(reference, parallel, 0);
}

}  // namespace
}  // namespace laacad::core
