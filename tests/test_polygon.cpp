#include <gtest/gtest.h>

#include "geometry/polygon.hpp"

namespace laacad::geom {
namespace {

Ring unit_square() { return {{0, 0}, {1, 0}, {1, 1}, {0, 1}}; }

TEST(Polygon, SignedAreaOrientation) {
  Ring sq = unit_square();
  EXPECT_NEAR(signed_area(sq), 1.0, 1e-12);
  std::reverse(sq.begin(), sq.end());
  EXPECT_NEAR(signed_area(sq), -1.0, 1e-12);
  EXPECT_NEAR(area(sq), 1.0, 1e-12);
}

TEST(Polygon, MakeCcwFixesOrientation) {
  Ring sq = unit_square();
  std::reverse(sq.begin(), sq.end());
  make_ccw(sq);
  EXPECT_GT(signed_area(sq), 0.0);
}

TEST(Polygon, PerimeterSquare) {
  EXPECT_NEAR(perimeter(unit_square()), 4.0, 1e-12);
}

TEST(Polygon, CentroidSquare) {
  Vec2 c = centroid(unit_square());
  EXPECT_NEAR(c.x, 0.5, 1e-12);
  EXPECT_NEAR(c.y, 0.5, 1e-12);
}

TEST(Polygon, CentroidLShape) {
  // L-shape: unit square plus a unit square to its right along the bottom.
  Ring l = {{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}};
  EXPECT_NEAR(area(l), 3.0, 1e-12);
  Vec2 c = centroid(l);
  // By symmetry about the diagonal y = x the centroid is on that line.
  EXPECT_NEAR(c.x, c.y, 1e-12);
}

TEST(Polygon, BoundingBox) {
  BBox b = bounding_box({{1, 2}, {-3, 5}, {0, -1}});
  EXPECT_EQ(b.lo, Vec2(-3, -1));
  EXPECT_EQ(b.hi, Vec2(1, 5));
  EXPECT_DOUBLE_EQ(b.width(), 4.0);
  EXPECT_DOUBLE_EQ(b.height(), 6.0);
  EXPECT_TRUE(b.contains({0, 0}));
  EXPECT_FALSE(b.contains({2, 0}));
  BBox g = b.inflated(1.0);
  EXPECT_TRUE(g.contains({2, 0}));
}

TEST(Polygon, ContainsPointSquare) {
  Ring sq = unit_square();
  EXPECT_TRUE(contains_point(sq, {0.5, 0.5}));
  EXPECT_FALSE(contains_point(sq, {1.5, 0.5}));
  EXPECT_FALSE(contains_point(sq, {-0.1, 0.5}));
  // Boundary points count as inside.
  EXPECT_TRUE(contains_point(sq, {1.0, 0.5}));
  EXPECT_TRUE(contains_point(sq, {0.0, 0.0}));
}

TEST(Polygon, ContainsPointConcave) {
  Ring l = {{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}};
  EXPECT_TRUE(contains_point(l, {0.5, 1.5}));
  EXPECT_TRUE(contains_point(l, {1.5, 0.5}));
  EXPECT_FALSE(contains_point(l, {1.5, 1.5}));  // the notch
}

TEST(Polygon, DistToBoundaryAndProjection) {
  Ring sq = unit_square();
  EXPECT_NEAR(dist_to_boundary(sq, {0.5, 0.5}), 0.5, 1e-12);
  EXPECT_NEAR(dist_to_boundary(sq, {2.0, 0.5}), 1.0, 1e-12);
  Vec2 p = project_to_boundary(sq, {2.0, 0.5});
  EXPECT_NEAR(p.x, 1.0, 1e-12);
  EXPECT_NEAR(p.y, 0.5, 1e-12);
}

TEST(Polygon, FarthestVertex) {
  auto fv = farthest_vertex(unit_square(), {0, 0});
  ASSERT_TRUE(fv.has_value());
  EXPECT_EQ(fv->first, 2u);  // (1,1)
  EXPECT_NEAR(fv->second, std::sqrt(2.0), 1e-12);
  EXPECT_FALSE(farthest_vertex({}, {0, 0}).has_value());
}

TEST(ClipRing, HalfSquare) {
  HalfPlane hp{{0.5, 0.0}, {1.0, 0.0}};  // keep x <= 0.5
  Ring half = clip_ring(unit_square(), hp);
  EXPECT_NEAR(area(half), 0.5, 1e-12);
  for (Vec2 v : half) EXPECT_LE(v.x, 0.5 + 1e-9);
}

TEST(ClipRing, NoCutLeavesRingIntact) {
  HalfPlane hp{{5.0, 0.0}, {1.0, 0.0}};  // keep x <= 5
  Ring r = clip_ring(unit_square(), hp);
  EXPECT_NEAR(area(r), 1.0, 1e-12);
}

TEST(ClipRing, FullCutEmpties) {
  HalfPlane hp{{-1.0, 0.0}, {1.0, 0.0}};  // keep x <= -1
  EXPECT_TRUE(clip_ring(unit_square(), hp).empty());
}

TEST(ClipRing, DiagonalCut) {
  // Keep the side of x + y <= 1 (normal (1,1)/sqrt2 through (1,0)).
  HalfPlane hp{{1.0, 0.0}, Vec2{1.0, 1.0}.normalized()};
  Ring tri = clip_ring(unit_square(), hp);
  EXPECT_NEAR(area(tri), 0.5, 1e-12);
}

TEST(SutherlandHodgman, SquareIntersection) {
  Ring window = {{0.5, 0.5}, {1.5, 0.5}, {1.5, 1.5}, {0.5, 1.5}};
  Ring out = sutherland_hodgman(unit_square(), window);
  EXPECT_NEAR(area(out), 0.25, 1e-12);
}

TEST(SutherlandHodgman, ConcaveSubjectAreaIsCorrect) {
  Ring l = {{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}};
  Ring window = {{0.5, 0.5}, {2.5, 0.5}, {2.5, 2.5}, {0.5, 2.5}};
  Ring out = sutherland_hodgman(l, window);
  // Intersection: L-shape cut at x,y >= 0.5 -> area 3 - (0.5*2 + 0.5*2 - .25)
  // = pieces: [0.5,2]x[0.5,1] (1.5*0.5) + [0.5,1]x[1,2] (0.5*1) = 1.25.
  EXPECT_NEAR(area(out), 1.25, 1e-9);
}

TEST(SutherlandHodgman, DisjointReturnsEmpty) {
  Ring window = {{5, 5}, {6, 5}, {6, 6}, {5, 6}};
  EXPECT_TRUE(sutherland_hodgman(unit_square(), window).empty());
}

TEST(DedupeRing, RemovesDuplicatesAndDegenerates) {
  Ring r = {{0, 0}, {0, 0}, {1, 0}, {1, 0}, {1, 1}, {0, 0}};
  Ring d = dedupe_ring(r);
  EXPECT_EQ(d.size(), 3u);
  // Fewer than three distinct vertices collapses to empty.
  EXPECT_TRUE(dedupe_ring({{0, 0}, {1e-12, 0}, {0, 1e-12}}).empty());
}

TEST(Ngon, CircumscribedContainsCircle) {
  const Vec2 c{3, 4};
  const double r = 2.0;
  Ring ngon = circumscribed_ngon(c, r, 24);
  // Every circle point must be inside the polygon.
  for (int i = 0; i < 360; i += 5) {
    const double a = i * M_PI / 180.0;
    EXPECT_TRUE(contains_point(ngon, c + Vec2{std::cos(a), std::sin(a)} * r));
  }
}

TEST(Ngon, InscribedVerticesOnCircle) {
  Ring ngon = inscribed_ngon({1, 1}, 3.0, 12);
  ASSERT_EQ(ngon.size(), 12u);
  for (Vec2 v : ngon) EXPECT_NEAR(dist(v, {1, 1}), 3.0, 1e-12);
}

TEST(BoxRing, MatchesBBox) {
  BBox b{{0, 0}, {2, 3}};
  Ring r = box_ring(b);
  EXPECT_NEAR(area(r), 6.0, 1e-12);
  EXPECT_GT(signed_area(r), 0.0);
}

}  // namespace
}  // namespace laacad::geom
