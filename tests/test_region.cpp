#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "laacad/region.hpp"
#include "voronoi/sites.hpp"

namespace laacad::core {
namespace {

using geom::Ring;
using geom::Vec2;

std::vector<vor::OrderKCell> one_cell(Ring poly) {
  vor::OrderKCell c;
  c.gens = {0};
  c.poly = std::move(poly);
  return {std::move(c)};
}

TEST(DominatingRegion, EmptyByDefault) {
  DominatingRegion r;
  EXPECT_TRUE(r.empty());
  EXPECT_DOUBLE_EQ(r.area(), 0.0);
  EXPECT_DOUBLE_EQ(r.max_dist_from({0, 0}), 0.0);
  EXPECT_FALSE(r.chebyshev().valid());
}

TEST(DominatingRegion, SquareCellInsideDomain) {
  wsn::Domain d = wsn::Domain::rectangle(100, 100);
  DominatingRegion r(one_cell({{10, 10}, {30, 10}, {30, 30}, {10, 30}}), d);
  ASSERT_FALSE(r.empty());
  EXPECT_NEAR(r.area(), 400.0, 1e-9);
  EXPECT_TRUE(r.contains({20, 20}));
  EXPECT_FALSE(r.contains({50, 50}));
  // Chebyshev center of a square is its center.
  const geom::Circle c = r.chebyshev();
  EXPECT_NEAR(c.center.x, 20.0, 1e-9);
  EXPECT_NEAR(c.center.y, 20.0, 1e-9);
  EXPECT_NEAR(c.radius, std::sqrt(200.0), 1e-9);
  // Farthest point from the corner is the opposite corner.
  EXPECT_NEAR(r.max_dist_from({10, 10}), std::sqrt(800.0), 1e-9);
  // Centroid of a square is its center.
  EXPECT_NEAR(r.centroid().x, 20.0, 1e-9);
}

TEST(DominatingRegion, CellClippedByDomainBoundary) {
  wsn::Domain d = wsn::Domain::rectangle(100, 100);
  // Cell hangs half outside the domain.
  DominatingRegion r(one_cell({{-20, 10}, {20, 10}, {20, 30}, {-20, 30}}), d);
  ASSERT_FALSE(r.empty());
  EXPECT_NEAR(r.area(), 400.0, 1e-9);  // only the inside half
  for (Vec2 v : r.vertices()) EXPECT_GE(v.x, -1e-9);
}

TEST(DominatingRegion, CellFullyOutsideDomainDropped) {
  wsn::Domain d = wsn::Domain::rectangle(100, 100);
  DominatingRegion r(
      one_cell({{200, 200}, {210, 200}, {210, 210}, {200, 210}}), d);
  EXPECT_TRUE(r.empty());
}

TEST(DominatingRegion, HoleReducesAreaButNotExtremes) {
  wsn::Domain d = wsn::Domain::rectangle(100, 100)
                      .with_rect_hole({15, 15}, {25, 25});
  DominatingRegion r(one_cell({{10, 10}, {30, 10}, {30, 30}, {10, 30}}), d);
  ASSERT_FALSE(r.empty());
  // Hole area (100) subtracted from coverage accounting...
  EXPECT_NEAR(r.area(), 400.0 - 100.0, 1e-9);
  // ... while the covering radius stays that of the outer piece (safe
  // over-approximation, documented in DESIGN.md).
  EXPECT_NEAR(r.max_dist_from({10, 10}), std::sqrt(800.0), 1e-9);
}

TEST(DominatingRegion, MultiPieceAggregation) {
  wsn::Domain d = wsn::Domain::rectangle(100, 100);
  std::vector<vor::OrderKCell> cells;
  cells.push_back({{0, 1}, {{0, 0}, {10, 0}, {10, 10}, {0, 10}}});
  cells.push_back({{0, 2}, {{20, 0}, {30, 0}, {30, 10}, {20, 10}}});
  DominatingRegion r(cells, d);
  EXPECT_EQ(r.pieces().size(), 2u);
  EXPECT_NEAR(r.area(), 200.0, 1e-9);
  EXPECT_TRUE(r.contains({5, 5}));
  EXPECT_TRUE(r.contains({25, 5}));
  EXPECT_FALSE(r.contains({15, 5}));  // the gap between pieces
  // MEC must cover both pieces.
  const geom::Circle c = r.chebyshev();
  for (Vec2 v : r.vertices()) EXPECT_LE(geom::dist(c.center, v),
                                        c.radius + 1e-6);
  // Area-weighted centroid sits between the pieces.
  EXPECT_NEAR(r.centroid().x, 15.0, 1e-9);
  EXPECT_NEAR(r.centroid().y, 5.0, 1e-9);
}

TEST(DominatingRegion, ChebyshevMatchesBruteForceMinimax) {
  // The Chebyshev center minimizes the max distance to region vertices;
  // verify against a grid search.
  wsn::Domain d = wsn::Domain::rectangle(100, 100);
  laacad::Rng rng(7);
  Ring tri = {{rng.uniform(0, 100), rng.uniform(0, 100)},
              {rng.uniform(0, 100), rng.uniform(0, 100)},
              {rng.uniform(0, 100), rng.uniform(0, 100)}};
  geom::make_ccw(tri);
  if (geom::area(tri) < 10.0) GTEST_SKIP();
  DominatingRegion r(one_cell(tri), d);
  const geom::Circle c = r.chebyshev();
  for (int t = 0; t < 2000; ++t) {
    const Vec2 probe{rng.uniform(0, 100), rng.uniform(0, 100)};
    EXPECT_GE(r.max_dist_from(probe), c.radius - 1e-6);
  }
}

}  // namespace
}  // namespace laacad::core
