// Million-node-regime regression suite.
//
// Pins three contracts the scale work must not bend:
//
//  1. Trajectories are bit-identical to the pre-SoA/pre-parallel baseline.
//     The FNV-1a hashes below were captured against the AoS + serial-grid
//     library on the pinned fig6-style config, for both providers, and the
//     refactored code must reproduce them exactly for every thread count.
//  2. The scale ladder's small/medium rungs complete with verified
//     k-coverage through the campaign engine, within a deterministic
//     dist2-evaluations-per-node budget (the machine-independent stand-in
//     for the wall-clock gates the CI bench job enforces).
//  3. The provider policy at scale: `backend auto` / a null provider picks
//     the localized Algorithm-2 provider above provider_auto_threshold,
//     and the global snapshot solver refuses site counts above its hard
//     cap with an error that names the way out.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

#include "campaign/scheduler.hpp"
#include "common/perf_counters.hpp"
#include "common/sysinfo.hpp"
#include "laacad/engine.hpp"
#include "laacad/region_provider.hpp"
#include "voronoi/sites.hpp"
#include "wsn/deployment.hpp"

namespace {

using namespace laacad;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t bits(double d) {
  std::uint64_t u;
  static_assert(sizeof(u) == sizeof(d));
  std::memcpy(&u, &d, 8);
  return u;
}

// The exact harness that produced the pinned baselines: fig6-style corner
// deployment, 100 nodes, k = 2, 40 rounds, hashed over every per-round
// metric plus the final node states. Any reordering of the reduction, any
// change to grid slot order that leaks into candidate order, any FP
// re-association in the hot path shows up here as a different hash.
std::uint64_t run_hash(const std::string& backend, int threads) {
  wsn::Domain domain = wsn::Domain::square_km();
  Rng rng(3);
  const auto initial = wsn::deploy_corner(domain, 100, rng);
  wsn::Network net(&domain, initial, 150.0);
  core::LaacadConfig cfg;
  cfg.k = 2;
  cfg.epsilon = 1.0;
  cfg.max_rounds = 40;
  cfg.num_threads = threads;
  cfg.retain_history = true;
  if (backend == "localized") {
    cfg.localized.max_hops = 10;
    cfg.provider = core::make_localized_provider(cfg.localized, cfg.seed);
  }
  core::Engine engine(net, cfg);
  const auto res = engine.run();
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& m : res.history) {
    h = fnv1a(h, bits(m.max_circumradius));
    h = fnv1a(h, bits(m.min_circumradius));
    h = fnv1a(h, bits(m.max_hat_radius));
    h = fnv1a(h, bits(m.max_move));
    h = fnv1a(h, static_cast<std::uint64_t>(m.moved));
  }
  for (const auto& node : net.nodes()) {
    h = fnv1a(h, bits(node.pos.x));
    h = fnv1a(h, bits(node.pos.y));
    h = fnv1a(h, bits(node.sensing_range));
  }
  h = fnv1a(h, static_cast<std::uint64_t>(res.rounds));
  return h;
}

constexpr std::uint64_t kGoldenGlobal = 0x73d2be4b0a498907ULL;
constexpr std::uint64_t kGoldenLocalized = 0x0809580983939f94ULL;

TEST(ScaleTrajectory, GlobalBitIdenticalToPreRefactorBaseline) {
  for (int threads : {1, 2, 8})
    EXPECT_EQ(run_hash("global", threads), kGoldenGlobal)
        << "threads=" << threads;
}

TEST(ScaleTrajectory, LocalizedBitIdenticalToPreRefactorBaseline) {
  for (int threads : {1, 2, 8})
    EXPECT_EQ(run_hash("localized", threads), kGoldenLocalized)
        << "threads=" << threads;
}

// --------------------------------------------------------------------------
// Scale ladder rungs through the campaign engine.

campaign::CampaignSpec rung_spec(int nodes, int max_rounds = 3) {
  return campaign::parse_campaign_string(
      "name scale_rung\n"
      "trials 1\n"
      "seed 900\n"
      "domain square\n"
      "side 1000\n"
      "deploy uniform\n"
      "k 2\n"
      "backend auto\n"
      "epsilon 5.0\n"
      "max_rounds " + std::to_string(max_rounds) + "\n"
      "gamma 0\n"
      "grid_resolution 25\n"
      "sweep nodes " + std::to_string(nodes) + "\n");
}

// Runs one rung serially and returns (ok, dist2 evals per node).
std::pair<bool, double> run_rung(int nodes) {
  perf::counters().reset();
  campaign::CampaignScheduler scheduler(rung_spec(nodes), {});
  const campaign::CampaignResult result = scheduler.run();
  const double per_node = static_cast<double>(perf::counters().dist2_evals) /
                          static_cast<double>(nodes);
  return {result.all_ok(), per_node};
}

TEST(ScaleLadder, SmallRungsCompleteWithinDist2Budget) {
  // Mirrors campaigns/scale_ladder.budget. These rungs sit below the
  // auto-provider threshold, so they run the global adaptive provider,
  // whose brute k-nearest seeding is O(n) per node — the caps grow a
  // little with n (measured 12789 and 15859 dist2/node).
  const std::pair<int, double> rungs[] = {{1000, 16000.0}, {10000, 20000.0}};
  for (const auto& [nodes, cap] : rungs) {
    const auto [ok, per_node] = run_rung(nodes);
    EXPECT_TRUE(ok) << "rung n=" << nodes;
    EXPECT_LE(per_node, cap) << "rung n=" << nodes;
    EXPECT_GT(per_node, 0.0) << "rung n=" << nodes;
  }
}

TEST(ScaleLadder, HundredThousandNodeRungCompletes) {
#ifndef NDEBUG
  GTEST_SKIP() << "10^5-node rung is Release-only (unoptimized build)";
#endif
  const auto [ok, per_node] = run_rung(100000);
  EXPECT_TRUE(ok);
  // Localized provider: per-node work is neighborhood-sized and flat
  // (measured 8124 dist2/node), unlike the global rungs above.
  EXPECT_LE(per_node, 12000.0);
  // The rung touched real memory; the probe must see it.
  EXPECT_GT(common::peak_rss_bytes(), 0u);
}

// trial_threads routes the scheduler around its own worker pool (a trial
// engine's pool cannot nest inside a campaign worker chunk) and must change
// no output bits — the engine is thread-count deterministic.
TEST(ScaleLadder, TrialThreadsIsBitIdenticalAndAvoidsNestedPools) {
  const auto run_with = [](int trial_threads) {
    campaign::CampaignOptions opt;
    opt.workers = 1;
    opt.trial_threads = trial_threads;
    campaign::CampaignScheduler scheduler(rung_spec(300), opt);
    return scheduler.run();
  };
  const campaign::CampaignResult serial = run_with(1);
  const campaign::CampaignResult threaded = run_with(2);
  ASSERT_EQ(serial.trials.size(), threaded.trials.size());
  for (std::size_t t = 0; t < serial.trials.size(); ++t) {
    EXPECT_TRUE(threaded.trials[t].ok) << threaded.trials[t].error;
    EXPECT_EQ(serial.trials[t].ok, threaded.trials[t].ok);
    ASSERT_EQ(serial.trials[t].metrics.size(),
              threaded.trials[t].metrics.size());
    for (std::size_t m = 0; m < serial.trials[t].metrics.size(); ++m) {
      EXPECT_EQ(bits(serial.trials[t].metrics[m]),
                bits(threaded.trials[t].metrics[m]))
          << "trial " << t << " metric " << m;
    }
  }
}

// --------------------------------------------------------------------------
// Provider policy at scale.

TEST(ProviderPolicy, AutoSelectsLocalizedAboveThreshold) {
  // Same network, four engines. The localized provider is the only one
  // that produces message accounting, so series.comm separates the two
  // cleanly, and the final-position hash ties each auto selection to its
  // explicit counterpart bit for bit.
  struct Outcome {
    std::uint64_t hash = 0;
    std::uint64_t gathers = 0;
  };
  auto run_one = [](int auto_threshold, const char* backend) {
    wsn::Domain domain = wsn::Domain::rectangle(600, 600);
    Rng rng(17);
    wsn::Network net(&domain, wsn::deploy_uniform(domain, 80, rng), 140.0);
    core::LaacadConfig cfg;
    cfg.k = 2;
    cfg.epsilon = 1.0;
    cfg.max_rounds = 6;
    if (auto_threshold > 0) cfg.provider_auto_threshold = auto_threshold;
    if (std::string(backend) == "localized")
      cfg.provider = core::make_localized_provider(cfg.localized, cfg.seed);
    else if (std::string(backend) == "global")
      cfg.provider = core::make_global_provider(cfg.adaptive);
    core::Engine engine(net, cfg);
    const auto res = engine.run();
    Outcome out;
    out.gathers = res.series.comm.gather_requests;
    std::uint64_t h = 1469598103934665603ULL;
    for (const auto& node : net.nodes()) {
      h = fnv1a(h, bits(node.pos.x));
      h = fnv1a(h, bits(node.pos.y));
    }
    out.hash = h;
    return out;
  };
  const Outcome explicit_localized = run_one(0, "localized");
  const Outcome explicit_global = run_one(0, "global");
  const Outcome auto_small_threshold = run_one(10, "auto");
  const Outcome auto_default = run_one(0, "auto");
  EXPECT_GT(explicit_localized.gathers, 0u);
  EXPECT_EQ(explicit_global.gathers, 0u);
  EXPECT_GT(auto_small_threshold.gathers, 0u)
      << "80 nodes > threshold 10 must auto-select the localized provider";
  EXPECT_EQ(auto_small_threshold.hash, explicit_localized.hash);
  EXPECT_EQ(auto_default.gathers, 0u)
      << "below the default threshold the global provider is the default";
  EXPECT_EQ(auto_default.hash, explicit_global.hash);
}

TEST(ProviderPolicy, GlobalProviderRefusesBeyondSiteCap) {
  wsn::Domain domain = wsn::Domain::square_km();
  std::vector<geom::Vec2> positions;
  const int n = core::GlobalRegionProvider::kMaxSites + 1;
  positions.reserve(static_cast<std::size_t>(n));
  // Deterministic lattice-ish fill; the provider must refuse before doing
  // any real geometry, so construction cost is all that matters here.
  for (int i = 0; i < n; ++i)
    positions.push_back({static_cast<double>(i % 1000),
                         static_cast<double>(i / 1000) * 2.0});
  wsn::Network net(&domain, std::move(positions), 30.0);
  auto provider = core::make_global_provider({});
  try {
    provider->begin_round(net, 2, 0);
    FAIL() << "expected std::invalid_argument beyond kMaxSites";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("localized"), std::string::npos)
        << "error must name the way out: " << what;
  }
}

// --------------------------------------------------------------------------
// separate_sites prescreen.

TEST(SeparateSites, PrescreenReturnsLargeCleanSetUnchanged) {
  Rng rng(99);
  std::vector<geom::Vec2> pts;
  for (int i = 0; i < 2000; ++i)
    pts.push_back({rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  // Uniform points at this density are ~millimetres apart; the 1e-7 m
  // threshold cannot trigger, so the output must be the input, bitwise.
  const auto out = vor::separate_sites(pts);
  ASSERT_EQ(out.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(bits(out[i].x), bits(pts[i].x)) << i;
    EXPECT_EQ(bits(out[i].y), bits(pts[i].y)) << i;
  }
}

TEST(SeparateSites, PrescreenStillSeparatesViolatingPairs) {
  Rng rng(100);
  std::vector<geom::Vec2> pts;
  for (int i = 0; i < 2000; ++i)
    pts.push_back({rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  // Plant an exactly coincident pair mid-array: the fast path must detect
  // it and fall back to the exact separation loop.
  pts[700] = pts[1400];
  const auto out = vor::separate_sites(pts);
  ASSERT_EQ(out.size(), pts.size());
  EXPECT_GE(geom::dist2(out[700], out[1400]),
            vor::kMinSiteSeparation * vor::kMinSiteSeparation);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i == 700 || i == 1400) continue;
    EXPECT_EQ(bits(out[i].x), bits(pts[i].x)) << i;
    EXPECT_EQ(bits(out[i].y), bits(pts[i].y)) << i;
  }
}

// --------------------------------------------------------------------------
// Streaming round series vs retained history.

TEST(RoundSeries, StreamingDigestMatchesRetainedHistory) {
  wsn::Domain domain = wsn::Domain::rectangle(600, 600);
  Rng rng(23);
  wsn::Network net(&domain, wsn::deploy_uniform(domain, 60, rng), 130.0);
  core::LaacadConfig cfg;
  cfg.k = 2;
  cfg.epsilon = 1.0;
  cfg.max_rounds = 30;
  cfg.retain_history = true;
  core::Engine engine(net, cfg);
  const auto res = engine.run();
  ASSERT_FALSE(res.history.empty());

  core::RoundSeries replay;
  for (const auto& m : res.history) replay.add(m);
  EXPECT_EQ(res.series.rounds, static_cast<int>(res.history.size()));
  EXPECT_EQ(res.series.rounds, replay.rounds);
  EXPECT_EQ(bits(res.series.travel), bits(replay.travel));
  EXPECT_EQ(bits(res.series.max_circumradius.mean()),
            bits(replay.max_circumradius.mean()));
  EXPECT_EQ(bits(res.series.max_move.max()), bits(replay.max_move.max()));
  EXPECT_EQ(bits(res.series.moved.sum()), bits(replay.moved.sum()));
  EXPECT_EQ(bits(res.series.last.max_move),
            bits(res.history.back().max_move));
}

TEST(RoundSeries, HistoryIsOptInAndOffByDefault) {
  wsn::Domain domain = wsn::Domain::rectangle(400, 400);
  Rng rng(31);
  wsn::Network net(&domain, wsn::deploy_uniform(domain, 40, rng), 110.0);
  core::LaacadConfig cfg;
  cfg.k = 2;
  cfg.epsilon = 1.0;
  cfg.max_rounds = 15;
  core::Engine engine(net, cfg);
  const auto res = engine.run();
  EXPECT_TRUE(res.history.empty())
      << "round history must be opt-in (retain_history)";
  EXPECT_EQ(res.series.rounds, res.rounds);
  EXPECT_GT(res.series.travel, 0.0);
}

}  // namespace
