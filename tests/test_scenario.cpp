#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "coverage/grid_checker.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace laacad::scenario {
namespace {

// ------------------------------------------------------------- parsing ----

TEST(ScenarioSpec, ParsesKeysCommentsAndEvents) {
  const ScenarioSpec spec = parse_scenario_string(R"(
# full-line comment
name     demo
domain   lshape
side     240      # trailing comment
nodes    25
k        3
seed     42
alpha    0.8
epsilon  0.25
max_rounds 120
backend  localized
max_hops 6
noise    0.02
battery  5e5
threads  4
grid_resolution 4

event converged fail_nodes count=5 pick=max_range
event round=30 drain_battery fraction=0.5
event converged add_nodes count=7 deploy=gaussian x=0.25 y=0.75 sigma=0.2
event converged resize_boundary scale=0.8
event converged jam_region x0=0.1 y0=0.1 x1=0.4 y1=0.4
)");
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.domain, "lshape");
  EXPECT_DOUBLE_EQ(spec.side, 240.0);
  EXPECT_EQ(spec.nodes, 25);
  EXPECT_EQ(spec.k, 3);
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_DOUBLE_EQ(spec.alpha, 0.8);
  EXPECT_DOUBLE_EQ(spec.epsilon, 0.25);
  EXPECT_EQ(spec.max_rounds, 120);
  EXPECT_EQ(spec.backend, "localized");
  EXPECT_EQ(spec.max_hops, 6);
  EXPECT_EQ(spec.num_threads, 4);
  ASSERT_EQ(spec.events.size(), 5u);

  EXPECT_EQ(spec.events[0].type, EventType::kFailNodes);
  EXPECT_EQ(spec.events[0].trigger, Trigger::kOnConvergence);
  EXPECT_EQ(spec.events[0].count, 5);
  EXPECT_EQ(spec.events[0].pick, "max_range");

  EXPECT_EQ(spec.events[1].type, EventType::kDrainBattery);
  EXPECT_EQ(spec.events[1].trigger, Trigger::kAtRound);
  EXPECT_EQ(spec.events[1].round, 30);
  EXPECT_DOUBLE_EQ(spec.events[1].fraction, 0.5);

  EXPECT_EQ(spec.events[2].type, EventType::kAddNodes);
  EXPECT_EQ(spec.events[2].deploy, "gaussian");
  EXPECT_DOUBLE_EQ(spec.events[2].at.x, 0.25);
  EXPECT_DOUBLE_EQ(spec.events[2].at.y, 0.75);
  EXPECT_DOUBLE_EQ(spec.events[2].sigma, 0.2);

  EXPECT_EQ(spec.events[3].type, EventType::kResizeBoundary);
  EXPECT_DOUBLE_EQ(spec.events[3].scale, 0.8);

  EXPECT_EQ(spec.events[4].type, EventType::kJamRegion);
  EXPECT_DOUBLE_EQ(spec.events[4].lo.x, 0.1);
  EXPECT_DOUBLE_EQ(spec.events[4].hi.y, 0.4);
}

TEST(ScenarioSpec, RejectsMalformedInputWithLineNumbers) {
  auto expect_error = [](const std::string& text, const std::string& needle) {
    try {
      parse_scenario_string(text);
      FAIL() << "expected parse error containing '" << needle << "'";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "actual message: " << e.what();
    }
  };
  expect_error("unknown_key 1\n", "unknown key");
  expect_error("nodes forty\n", "expects an integer");
  expect_error("side big\n", "expects a number");
  expect_error("seed abc\n", "unsigned integer");
  expect_error("seed 12x3\n", "unsigned integer");
  expect_error("name a b\n", "key value");
  expect_error("event converged explode\n", "unknown event type");
  expect_error("event soon fail_nodes count=1\n", "unknown trigger");
  expect_error("event converged fail_nodes count=1 pick=famous\n", "pick");
  expect_error("event converged fail_nodes bogus\n", "name=value");
  expect_error("event converged add_nodes count=3 scale=2\n",
               "does not apply");
  // Region rects only apply to pick=region: a forgotten pick= is an error,
  // not a silently-random failure event.
  expect_error("event converged fail_nodes count=6 x0=0.0 y0=0.0 x1=0.3\n",
               "does not apply");
  expect_error(
      "event converged fail_nodes count=0 pick=region x0=0.5 x1=0.2\n",
      "empty");
  expect_error(
      "event converged fail_nodes count=0 pick=region x0=-0.2 x1=0.5\n",
      "fractions");
  expect_error("event converged add_nodes count=6 deploy=corner x=0.2\n",
               "does not apply");
  expect_error("event converged fail_nodes count=\n", "name=value");
  expect_error("event converged drain_battery epochs=0 fraction=0\n",
               "drains nothing");
  expect_error("event converged jam_region x0=0.5 x1=0.2\n", "empty");
  expect_error("k 0\n", "k must be >= 1");
  expect_error("nodes 3\nk 5\n", "nodes must be >= k");
  expect_error("alpha 1.5\n", "alpha");
  expect_error("epsilon 0\n", "epsilon");
  expect_error("max_rounds 0\n", "max_rounds");
  // Error messages carry the 1-based source line.
  expect_error("name x\n\nnodes oops\n", "line 3");
  // Round-triggered events must be scheduled in order.
  expect_error(
      "event round=50 fail_nodes count=1\nevent round=20 fail_nodes count=1\n",
      "non-decreasing");
}

TEST(ScenarioSpec, ShippedScenarioFilesParse) {
  const std::string dir = std::string(LAACAD_SOURCE_DIR) + "/scenarios/";
  for (const char* file : {"cascade.scn", "staged_arrivals.scn",
                           "shrinking_boundary.scn", "churn_localized.scn"}) {
    SCOPED_TRACE(file);
    ScenarioSpec spec;
    ASSERT_NO_THROW(spec = load_scenario_file(dir + file));
    EXPECT_NE(spec.name, "unnamed");
    EXPECT_FALSE(spec.events.empty());
  }
}

TEST(ScenarioSpec, FileNameBecomesDefaultName) {
  const std::string dir = std::string(LAACAD_SOURCE_DIR) + "/scenarios/";
  const ScenarioSpec spec = load_scenario_file(dir + "cascade.scn");
  EXPECT_EQ(spec.name, "cascade");  // set explicitly in the file
}

// -------------------------------------------------------------- runner ----

/// Compact cascade used across the runner tests: small enough to run in a
/// unit test, rich enough to hit failures, drain, arrivals, and a jam.
constexpr const char* kTimelineSpec = R"(
name    timeline
domain  square
side    200
nodes   24
k       2
seed    9
max_rounds 200
grid_resolution 4
event converged fail_nodes count=4 pick=random
event converged add_nodes count=6 deploy=corner
event converged jam_region x0=0.4 y0=0.4 x1=0.6 y1=0.6
)";

TEST(ScenarioRunner, ExecutesTimelineAndRestoresCoverage) {
  ScenarioRunner runner(parse_scenario_string(kTimelineSpec));
  const ScenarioResult result = runner.run();

  ASSERT_EQ(result.phases.size(), 4u);  // initial + one per event
  ASSERT_EQ(result.events.size(), 3u);
  EXPECT_FALSE(result.aborted);
  EXPECT_TRUE(result.all_converged);

  // Node accounting: 24 - 4 + 6 = 26.
  EXPECT_EQ(result.phases[0].nodes, 24);
  EXPECT_EQ(result.phases[1].nodes, 20);
  EXPECT_EQ(result.phases[2].nodes, 26);
  EXPECT_EQ(result.phases[3].nodes, 26);
  EXPECT_EQ(result.events[0].nodes_before, 24);
  EXPECT_EQ(result.events[0].nodes_after, 20);

  // Every redeployment phase restored k-coverage, and the final deployment
  // verifies against a fresh GridChecker pass at the assigned ranges.
  for (const PhaseRecord& p : result.phases) {
    EXPECT_GE(p.coverage_min_depth, 2) << "phase " << p.phase;
    EXPECT_DOUBLE_EQ(p.covered_fraction_k, 1.0) << "phase " << p.phase;
  }
  EXPECT_TRUE(result.final_coverage_ok);
  const auto check = cov::grid_coverage(
      runner.domain(), cov::sensing_disks(runner.network()), 4.0);
  EXPECT_GE(check.min_depth, 2);

  // The jam event swapped in a domain with a hole; no node sits inside it.
  ASSERT_EQ(runner.domain().holes().size(), 1u);
  for (const auto& n : runner.network().nodes())
    EXPECT_TRUE(runner.domain().contains(n.pos));

  // Global round bookkeeping: phases tile the timeline.
  int expected_start = 0;
  for (const PhaseRecord& p : result.phases) {
    EXPECT_EQ(p.start_round, expected_start);
    expected_start += p.rounds;
  }
  EXPECT_EQ(result.total_rounds, expected_start);
}

TEST(ScenarioRunner, RoundTriggeredEventInterruptsUnconvergedPhase) {
  const ScenarioSpec spec = parse_scenario_string(R"(
name    interrupt
side    200
nodes   20
k       2
seed    4
max_rounds 200
event round=5 fail_nodes count=3 pick=random
)");
  ScenarioRunner runner(spec);
  const ScenarioResult result = runner.run();
  ASSERT_EQ(result.phases.size(), 2u);
  // Phase 0 was cut at round 5, well before convergence.
  EXPECT_EQ(result.phases[0].rounds, 5);
  EXPECT_FALSE(result.phases[0].converged);
  EXPECT_EQ(result.events[0].global_round, 5);
  EXPECT_EQ(result.events[0].idle_rounds, 0);
  // The post-disruption phase then converges normally.
  EXPECT_TRUE(result.phases[1].converged);
  EXPECT_EQ(result.phases[1].nodes, 17);
}

TEST(ScenarioRunner, ConvergedNetworkIdlesUntilScheduledRound) {
  const ScenarioSpec spec = parse_scenario_string(R"(
name    idle
side    150
nodes   12
k       1
seed    2
max_rounds 200
event round=150 fail_nodes count=2 pick=random
)");
  ScenarioRunner runner(spec);
  const ScenarioResult result = runner.run();
  ASSERT_EQ(result.events.size(), 1u);
  ASSERT_LT(result.phases[0].rounds, 150);  // converged early
  EXPECT_TRUE(result.phases[0].converged);
  // The clock fast-forwarded to the scheduled disruption.
  EXPECT_EQ(result.events[0].global_round, 150);
  EXPECT_EQ(result.events[0].idle_rounds, 150 - result.phases[0].rounds);
  EXPECT_EQ(result.phases[1].start_round, 150);
}

TEST(ScenarioRunner, RegionFailureRemovesExactlyTheNodesInside) {
  const ScenarioSpec spec = parse_scenario_string(R"(
name    blackout
side    200
nodes   20
k       1
seed    6
max_rounds 200
event converged fail_nodes count=0 pick=region x0=0.0 y0=0.0 x1=0.5 y1=0.5
)");
  ScenarioRunner runner(spec);
  const ScenarioResult result = runner.run();
  ASSERT_EQ(result.events.size(), 1u);
  const int killed =
      result.events[0].nodes_before - result.events[0].nodes_after;
  EXPECT_GT(killed, 0);  // a converged uniform deployment populates the rect
  // Survivors redeployed and restored 1-coverage of the full square.
  EXPECT_TRUE(result.final_coverage_ok);
}

TEST(ScenarioRunner, DrainBatteryKillsDepletedNodes) {
  // fraction=1 wipes every battery: below k nodes, the scenario aborts.
  const ScenarioSpec spec = parse_scenario_string(R"(
name    drained
side    150
nodes   10
k       1
seed    3
max_rounds 200
event converged drain_battery fraction=1
)");
  ScenarioRunner runner(spec);
  const ScenarioResult result = runner.run();
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.events[0].nodes_after, 0);
  EXPECT_FALSE(result.final_coverage_ok);
  EXPECT_NE(result.abort_reason.find("below k"), std::string::npos);
}

TEST(ScenarioRunner, ResizeBoundaryShrinksRangesAndLoads) {
  const ScenarioSpec spec = parse_scenario_string(R"(
name    shrink
side    300
nodes   20
k       2
seed    12
max_rounds 250
event converged resize_boundary scale=0.5
)");
  ScenarioRunner runner(spec);
  const ScenarioResult result = runner.run();
  ASSERT_EQ(result.phases.size(), 2u);
  EXPECT_TRUE(result.final_coverage_ok);
  // Same nodes, a quarter of the area: the max range must drop sharply.
  EXPECT_LT(result.phases[1].final_max_range,
            0.75 * result.phases[0].final_max_range);
  EXPECT_LT(result.phases[1].load.max_load, result.phases[0].load.max_load);
  // The new domain really is half-sized and every node moved inside it.
  EXPECT_NEAR(runner.domain().bbox().width(), 150.0, 1e-9);
  for (const auto& n : runner.network().nodes())
    EXPECT_TRUE(runner.domain().contains(n.pos));
}

TEST(ScenarioRunner, BatteryMetricsTrackDrain) {
  const ScenarioSpec spec = parse_scenario_string(R"(
name    battery
side    150
nodes   12
k       1
seed    5
battery 1000000
max_rounds 200
event converged drain_battery fraction=0.25
)");
  ScenarioRunner runner(spec);
  const ScenarioResult result = runner.run();
  ASSERT_EQ(result.phases.size(), 2u);
  EXPECT_DOUBLE_EQ(result.phases[0].battery_mean, 1.0e6);
  EXPECT_DOUBLE_EQ(result.phases[1].battery_mean, 7.5e5);
  EXPECT_DOUBLE_EQ(result.phases[1].battery_min, 7.5e5);
}

TEST(ScenarioRunner, JamRegionOutsideDomainIsRejected) {
  // L-shape: the top-right quadrant is outside the outer ring, so a jam
  // rect entirely inside the notch cannot become a hole.
  const ScenarioSpec spec = parse_scenario_string(R"(
name    notch_jam
domain  lshape
side    200
nodes   14
k       1
seed    7
max_rounds 200
event converged jam_region x0=0.8 y0=0.8 x1=0.95 y1=0.95
)");
  ScenarioRunner runner(spec);
  EXPECT_THROW(runner.run(), std::runtime_error);
}

TEST(ScenarioRunner, JamSwallowingWholeDomainIsRejected) {
  const ScenarioSpec spec = parse_scenario_string(R"(
name    total_jam
side    200
nodes   10
k       1
seed    2
max_rounds 200
event converged jam_region x0=0.0 y0=0.0 x1=1.0 y1=1.0
)");
  ScenarioRunner runner(spec);
  EXPECT_THROW(runner.run(), std::runtime_error);
}

TEST(ScenarioRunner, OverlappingJamRegionsUnion) {
  // Two jams sharing a 20 x 20 m corner: the blocked region must be their
  // union (40*40 + 40*40 - 20*20 = 2800 m^2), achieved by adding only the
  // *new* area of the second jam as disjoint holes — never double-counted,
  // never rejected.
  const ScenarioSpec spec = parse_scenario_string(R"(
name    double_jam
side    200
nodes   16
k       1
seed    7
max_rounds 200
event converged jam_region x0=0.4 y0=0.4 x1=0.6 y1=0.6
event converged jam_region x0=0.5 y0=0.5 x1=0.7 y1=0.7
)");
  ScenarioRunner runner(spec);
  const ScenarioResult result = runner.run();
  EXPECT_FALSE(result.aborted);
  EXPECT_NEAR(runner.domain().area(), 200.0 * 200.0 - 2800.0, 1e-6);
  double holes_area = 0.0;
  for (const auto& h : runner.domain().holes())
    holes_area += geom::area(h);
  EXPECT_NEAR(holes_area, 2800.0, 1e-6);
  // The union is blocked and its complement is not.
  EXPECT_FALSE(runner.domain().contains({100.0, 100.0}));  // in both jams
  EXPECT_FALSE(runner.domain().contains({85.0, 85.0}));    // first jam only
  EXPECT_FALSE(runner.domain().contains({135.0, 135.0}));  // second jam only
  EXPECT_TRUE(runner.domain().contains({85.0, 135.0}));    // in neither
  for (const auto& n : runner.network().nodes())
    EXPECT_TRUE(runner.domain().contains(n.pos));
}

TEST(ScenarioRunner, RedundantJamInsideExistingJamIsANoOp) {
  // Union semantics: re-jamming already-blocked ground adds no hole and
  // swaps no domain, but the event still fires and ends the phase.
  const ScenarioSpec spec = parse_scenario_string(R"(
name    rejam
side    200
nodes   16
k       1
seed    7
max_rounds 200
event converged jam_region x0=0.3 y0=0.3 x1=0.7 y1=0.7
event converged jam_region x0=0.4 y0=0.4 x1=0.6 y1=0.6
)");
  ScenarioRunner runner(spec);
  const ScenarioResult result = runner.run();
  EXPECT_FALSE(result.aborted);
  ASSERT_EQ(result.events.size(), 2u);
  EXPECT_NE(result.events[1].detail.find("no new area"), std::string::npos);
  EXPECT_NEAR(runner.domain().area(), 200.0 * 200.0 - 80.0 * 80.0, 1e-6);
}

TEST(ScenarioRunner, DeclaredObstaclesArePunchedAtSetup) {
  // Two overlapping obstacle lines union exactly like jams, and the
  // deployment never lands on them.
  const ScenarioSpec spec = parse_scenario_string(R"(
name    obstacles
side    200
nodes   16
k       1
seed    9
max_rounds 250
obstacle 0.2 0.2 0.4 0.4
obstacle 0.3 0.3 0.5 0.5
)");
  ASSERT_EQ(spec.obstacles.size(), 2u);
  ScenarioRunner runner(spec);
  EXPECT_NEAR(runner.domain().area(), 200.0 * 200.0 - 2800.0, 1e-6);
  for (const auto& n : runner.network().nodes())
    EXPECT_TRUE(runner.domain().contains(n.pos));
  const ScenarioResult result = runner.run();
  EXPECT_FALSE(result.aborted);
  EXPECT_TRUE(result.final_coverage_ok);
}

TEST(ScenarioSpec, RejectsMalformedObstacles) {
  EXPECT_THROW(parse_scenario_string("obstacle 0.2 0.2 0.4\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_string("obstacle 0.4 0.2 0.2 0.4\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_string("obstacle 0.2 0.2 0.4 1.4\n"),
               std::runtime_error);
}

TEST(ScenarioRunner, StackedDeployStartsInGroupsOfK) {
  const ScenarioSpec spec = parse_scenario_string(R"(
name    stacked_start
side    200
deploy  stacked
nodes   14
k       3
seed    11
max_rounds 1
)");
  ScenarioRunner runner(spec);
  // 14 nodes at k = 3 rounds down to 4 anchors x 3 nodes.
  EXPECT_EQ(runner.network().size(), 12);
  // Every node sits within the 1e-3 jitter of some anchor triple: the
  // multiset of pairwise-close groups has exactly 4 clusters.
  const auto& pts = runner.network().positions();
  int close_pairs = 0;
  for (std::size_t a = 0; a < pts.size(); ++a)
    for (std::size_t b = a + 1; b < pts.size(); ++b)
      if (geom::dist(pts[a], pts[b]) < 1.0) ++close_pairs;
  EXPECT_EQ(close_pairs, 4 * 3);  // 4 groups x C(3,2) pairs each
}

TEST(ScenarioRunner, JamRegionClipsToNonRectangularOuterRing) {
  // The jam rect straddles the L-shape notch boundary: only the in-domain
  // part may become a hole (Domain requires holes inside the outer ring).
  const ScenarioSpec spec = parse_scenario_string(R"(
name    straddle_jam
domain  lshape
side    200
nodes   16
k       1
seed    13
max_rounds 250
event converged jam_region x0=0.3 y0=0.55 x1=0.6 y1=0.8
)");
  ScenarioRunner runner(spec);
  const ScenarioResult result = runner.run();
  EXPECT_FALSE(result.aborted);
  ASSERT_EQ(runner.domain().holes().size(), 1u);
  // The hole was clipped: smaller than the requested rect (0.3 x 0.25 of a
  // 200 x 200 bbox = 3000 m^2 requested, only x < 100 survives).
  const double hole_area = geom::area(runner.domain().holes()[0]);
  EXPECT_GT(hole_area, 0.0);
  EXPECT_LT(hole_area, 3000.0 - 1.0);
  for (const auto& n : runner.network().nodes())
    EXPECT_TRUE(runner.domain().contains(n.pos));
}

// ------------------------------------------------- determinism & JSON ----

std::string run_to_json(const std::string& text, int threads) {
  ScenarioSpec spec = parse_scenario_string(text);
  spec.num_threads = threads;
  ScenarioRunner runner(std::move(spec));
  const ScenarioResult result = runner.run();
  std::ostringstream out;
  result.write_json(out);
  return out.str();
}

TEST(ScenarioRunner, FullTimelineBitIdenticalAcrossThreadCounts) {
  const std::string serial = run_to_json(kTimelineSpec, 1);
  EXPECT_EQ(serial, run_to_json(kTimelineSpec, 2));
  EXPECT_EQ(serial, run_to_json(kTimelineSpec, 5));
  EXPECT_EQ(serial, run_to_json(kTimelineSpec, 0));  // hardware concurrency
}

TEST(ScenarioRunner, LocalizedBackendBitIdenticalAcrossThreadCounts) {
  const std::string spec = R"(
name    localized_churn
side    200
nodes   20
k       2
seed    8
backend localized
max_hops 8
max_rounds 150
event converged fail_nodes count=3 pick=random
event converged add_nodes count=4 deploy=uniform
)";
  EXPECT_EQ(run_to_json(spec, 1), run_to_json(spec, 4));
}

TEST(ScenarioRunner, JsonEmitterProducesWellFormedDocument) {
  const std::string json = run_to_json(kTimelineSpec, 1);
  // Structural spot-checks (no JSON parser in the toolchain): key fields
  // present, braces/brackets balanced, thread count never serialized.
  EXPECT_NE(json.find("\"schema\": \"laacad.scenario.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"scenario\": \"timeline\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("\"summary\""), std::string::npos);
  EXPECT_NE(json.find("\"final_coverage_ok\": true"), std::string::npos);
  EXPECT_EQ(json.find("threads"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace laacad::scenario
