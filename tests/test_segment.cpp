#include <gtest/gtest.h>

#include "geometry/segment.hpp"

namespace laacad::geom {
namespace {

TEST(ClosestPoint, InteriorProjection) {
  Vec2 c = closest_point_on_segment({5, 3}, {0, 0}, {10, 0});
  EXPECT_NEAR(c.x, 5.0, 1e-12);
  EXPECT_NEAR(c.y, 0.0, 1e-12);
}

TEST(ClosestPoint, ClampsToEndpoints) {
  EXPECT_EQ(closest_point_on_segment({-3, 1}, {0, 0}, {10, 0}), Vec2(0, 0));
  EXPECT_EQ(closest_point_on_segment({14, -2}, {0, 0}, {10, 0}), Vec2(10, 0));
}

TEST(ClosestPoint, DegenerateSegment) {
  EXPECT_EQ(closest_point_on_segment({5, 5}, {1, 1}, {1, 1}), Vec2(1, 1));
}

TEST(DistPointSegment, Basic) {
  EXPECT_NEAR(dist_point_segment({5, 3}, {0, 0}, {10, 0}), 3.0, 1e-12);
  EXPECT_NEAR(dist_point_segment({-4, 3}, {0, 0}, {10, 0}), 5.0, 1e-12);
}

TEST(LineIntersection, CrossingLines) {
  auto p = line_intersection({0, 0}, {1, 1}, {0, 2}, {1, -1});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 1.0, 1e-12);
  EXPECT_NEAR(p->y, 1.0, 1e-12);
}

TEST(LineIntersection, ParallelReturnsNullopt) {
  EXPECT_FALSE(line_intersection({0, 0}, {1, 0}, {0, 1}, {2, 0}).has_value());
}

TEST(SegmentIntersection, ProperCrossing) {
  auto p = segment_intersection({0, 0}, {2, 2}, {0, 2}, {2, 0});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 1.0, 1e-12);
  EXPECT_NEAR(p->y, 1.0, 1e-12);
}

TEST(SegmentIntersection, DisjointSegments) {
  EXPECT_FALSE(segment_intersection({0, 0}, {1, 0}, {0, 1}, {1, 1}));
  // Lines cross but outside the segment extents.
  EXPECT_FALSE(segment_intersection({0, 0}, {1, 1}, {3, 0}, {4, -5}));
}

TEST(SegmentIntersection, TouchingAtEndpointCounts) {
  auto p = segment_intersection({0, 0}, {1, 1}, {1, 1}, {2, 0});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 1.0, 1e-9);
  EXPECT_NEAR(p->y, 1.0, 1e-9);
}

TEST(SegmentIntersection, CollinearOverlapReportsAPoint) {
  auto p = segment_intersection({0, 0}, {4, 0}, {2, 0}, {6, 0});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(dist_point_segment(*p, {0, 0}, {4, 0}), 0.0, 1e-9);
  EXPECT_NEAR(dist_point_segment(*p, {2, 0}, {6, 0}), 0.0, 1e-9);
}

TEST(SegmentIntersection, CollinearDisjointReturnsNullopt) {
  EXPECT_FALSE(segment_intersection({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

TEST(SegmentStruct, LengthMidpointDirection) {
  Segment s{{0, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(s.length(), 5.0);
  EXPECT_EQ(s.midpoint(), Vec2(1.5, 2.0));
  EXPECT_NEAR(s.direction().norm(), 1.0, 1e-15);
}

}  // namespace
}  // namespace laacad::geom
