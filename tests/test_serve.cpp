// Serving daemon tests: spec round-trip formatting, snapshot query
// correctness against brute force, the replay guarantee (served state ==
// batch replay of the event log, byte-for-byte, at any thread count),
// protocol sessions over the stdio transport and a real TCP socket, and a
// reader/round-loop concurrency stress designed to run under TSan.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/flatjson.hpp"
#include "coverage/grid_checker.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "serve/event_log.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace laacad::serve {
namespace {

constexpr const char* kBaseSpec = R"(
name      serve_test
domain    square
side      200
nodes     24
k         2
seed      9
epsilon   0.5
max_rounds 120
battery   2.0e6
grid_resolution 5
)";

scenario::ScenarioSpec base_spec() {
  return scenario::parse_scenario_string(kBaseSpec);
}

std::string temp_path(const std::string& stem) {
  return testing::TempDir() + stem;
}

// ------------------------------------------------- format round-trips ----

TEST(SpecFormat, EventLinesRoundTrip) {
  const scenario::ScenarioSpec spec = scenario::parse_scenario_string(R"(
name roundtrip
nodes 30
k 2
event converged fail_nodes count=5 pick=max_range
event round=7 drain_battery fraction=0.25
event round=30 fail_nodes count=0 pick=region x0=0.1 y0=0.2 x1=0.5 y1=0.75
event converged drain_battery epochs=12.5
event converged add_nodes count=7 deploy=gaussian x=0.25 y=0.75 sigma=0.2
event converged add_nodes count=3 deploy=corner
event converged resize_boundary scale=0.8
event converged jam_region x0=0.1 y0=0.1 x1=0.4 y1=0.4
)");
  for (const scenario::Event& ev : spec.events) {
    const std::string line = scenario::format_event(ev);
    const scenario::ScenarioSpec re = scenario::parse_scenario_string(
        "nodes 30\nk 2\n" + line + "\n");
    ASSERT_EQ(re.events.size(), 1u) << line;
    const scenario::Event& back = re.events[0];
    EXPECT_EQ(back.trigger, ev.trigger) << line;
    EXPECT_EQ(back.round, ev.round) << line;
    EXPECT_EQ(back.type, ev.type) << line;
    EXPECT_EQ(back.count, ev.count) << line;
    EXPECT_EQ(back.pick, ev.pick) << line;
    EXPECT_EQ(back.deploy, ev.deploy) << line;
    EXPECT_DOUBLE_EQ(back.epochs, ev.epochs) << line;
    EXPECT_DOUBLE_EQ(back.fraction, ev.fraction) << line;
    EXPECT_DOUBLE_EQ(back.scale, ev.scale) << line;
    EXPECT_DOUBLE_EQ(back.lo.x, ev.lo.x) << line;
    EXPECT_DOUBLE_EQ(back.lo.y, ev.lo.y) << line;
    EXPECT_DOUBLE_EQ(back.hi.x, ev.hi.x) << line;
    EXPECT_DOUBLE_EQ(back.hi.y, ev.hi.y) << line;
    EXPECT_DOUBLE_EQ(back.at.x, ev.at.x) << line;
    EXPECT_DOUBLE_EQ(back.at.y, ev.at.y) << line;
    EXPECT_DOUBLE_EQ(back.sigma, ev.sigma) << line;
  }
}

TEST(SpecFormat, HeaderRoundTripsFieldForField) {
  scenario::ScenarioSpec spec = base_spec();
  spec.domain = "lshape";
  spec.hole = true;
  spec.deploy = "gaussian";
  spec.alpha = 0.75;
  spec.gamma = 42.5;
  spec.backend = "localized";
  spec.max_hops = 7;
  spec.noise = 0.01;
  spec.flooding = "ttl";
  const scenario::ScenarioSpec re =
      scenario::parse_scenario_string(scenario::format_spec_header(spec));
  EXPECT_EQ(re.name, spec.name);
  EXPECT_EQ(re.domain, spec.domain);
  EXPECT_DOUBLE_EQ(re.side, spec.side);
  EXPECT_EQ(re.hole, spec.hole);
  EXPECT_EQ(re.deploy, spec.deploy);
  EXPECT_EQ(re.nodes, spec.nodes);
  EXPECT_EQ(re.k, spec.k);
  EXPECT_DOUBLE_EQ(re.alpha, spec.alpha);
  EXPECT_DOUBLE_EQ(re.epsilon, spec.epsilon);
  EXPECT_EQ(re.max_rounds, spec.max_rounds);
  EXPECT_DOUBLE_EQ(re.gamma, spec.gamma);
  EXPECT_EQ(re.backend, spec.backend);
  EXPECT_EQ(re.max_hops, spec.max_hops);
  EXPECT_DOUBLE_EQ(re.noise, spec.noise);
  EXPECT_EQ(re.flooding, spec.flooding);
  EXPECT_EQ(re.seed, spec.seed);
  EXPECT_DOUBLE_EQ(re.battery, spec.battery);
  EXPECT_DOUBLE_EQ(re.grid_resolution, spec.grid_resolution);
}

TEST(SpecFormat, ParseEventBodyStampsDefaultTrigger) {
  const scenario::Event ev =
      scenario::parse_event_body("fail_nodes count=3 pick=random");
  EXPECT_EQ(ev.type, scenario::EventType::kFailNodes);
  EXPECT_EQ(ev.trigger, scenario::Trigger::kOnConvergence);
  EXPECT_EQ(ev.count, 3);
  EXPECT_THROW(scenario::parse_event_body("bogus_event count=1"),
               std::runtime_error);
  EXPECT_THROW(scenario::parse_event_body(""), std::runtime_error);
}

// ------------------------------------------------------ snapshot reads ----

TEST(Snapshot, ClosestNodesMatchesBruteForce) {
  ServeConfig cfg;
  cfg.spec = base_spec();
  CoverageService svc(std::move(cfg));
  svc.start();
  svc.drain();

  const auto snap = svc.snapshot();
  const auto positions = snap->network().positions();
  const geom::Vec2 queries[] = {
      {10.0, 10.0}, {100.0, 100.0}, {199.0, 3.0}, {50.0, 150.0}};
  for (const geom::Vec2 q : queries) {
    const auto got = snap->closest_nodes(q, 5);
    ASSERT_EQ(got.size(), 5u);
    std::vector<double> dists;
    for (const geom::Vec2 p : positions) dists.push_back((p - q).norm());
    std::sort(dists.begin(), dists.end());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].dist, dists[i], 1e-9);
      EXPECT_NEAR((got[i].pos - q).norm(), got[i].dist, 1e-9);
      if (i > 0) {
        EXPECT_GE(got[i].dist, got[i - 1].dist);
      }
    }
  }
}

TEST(Snapshot, CoverageDepthMatchesDiskCount) {
  ServeConfig cfg;
  cfg.spec = base_spec();
  CoverageService svc(std::move(cfg));
  svc.start();
  svc.drain();

  const auto snap = svc.snapshot();
  ASSERT_TRUE(snap->meta().finalized);
  const auto disks = cov::sensing_disks(snap->network());
  for (double x = 5.0; x < 200.0; x += 32.5)
    for (double y = 5.0; y < 200.0; y += 32.5) {
      const geom::Vec2 q{x, y};
      EXPECT_EQ(snap->coverage_depth(q), cov::depth_at(disks, q))
          << "at (" << x << ", " << y << ")";
    }
}

TEST(Snapshot, EpochsAreMonotonicAcrossPhases) {
  ServeConfig cfg;
  cfg.spec = base_spec();
  CoverageService svc(std::move(cfg));
  const std::uint64_t initial = svc.snapshot()->meta().epoch;
  EXPECT_EQ(initial, 1u);
  svc.start();
  svc.drain();
  const auto converged = svc.snapshot();
  EXPECT_GT(converged->meta().epoch, initial);
  EXPECT_TRUE(converged->meta().converged);
  svc.submit_event_line("fail_nodes count=2 pick=random");
  svc.drain();
  EXPECT_GT(svc.snapshot()->meta().epoch, converged->meta().epoch);
  EXPECT_EQ(svc.snapshot()->meta().events_applied, 1);
}

// ----------------------------------------------------- replay guarantee ----

/// Drive a service through a drained (deterministic) event sequence and
/// return the canonical state document.
std::string serve_session_state(const std::string& log_path,
                                int num_threads) {
  ServeConfig cfg;
  cfg.spec = base_spec();
  cfg.spec.num_threads = num_threads;
  cfg.log_path = log_path;
  CoverageService svc(std::move(cfg));
  svc.start();
  svc.drain();
  svc.submit_event_line("fail_nodes count=4 pick=random");
  svc.drain();
  svc.submit_event_line("add_nodes count=6 deploy=gaussian x=0.3 y=0.3 sigma=0.15");
  svc.submit_event_line("drain_battery epochs=10");
  svc.drain();
  svc.submit_event_line("jam_region x0=0.6 y0=0.6 x1=0.9 y1=0.9");
  svc.stop();
  std::ostringstream out;
  svc.write_state(out);
  return out.str();
}

TEST(Replay, ServedStateEqualsBatchReplayByteForByte) {
  const std::string log_path = temp_path("serve_replay.log");
  const std::string served = serve_session_state(log_path, 1);

  std::ostringstream replayed;
  replay_log_state(log_path, replayed);
  EXPECT_EQ(served, replayed.str());

  // The engine is thread-count deterministic; the replay (and a re-serve)
  // must be too.
  std::ostringstream replayed_mt;
  replay_log_state(log_path, replayed_mt, /*num_threads=*/3);
  EXPECT_EQ(served, replayed_mt.str());

  const std::string log2 = temp_path("serve_replay_t2.log");
  EXPECT_EQ(serve_session_state(log2, 2), served);
}

TEST(Replay, RacySubmissionsStayReplayable) {
  // No drain() between submissions: where each event lands in the round
  // sequence depends on thread timing, so the state is not deterministic
  // across runs — but served state must STILL equal the replay of the log
  // that this run produced. That is the actual guarantee.
  const std::string log_path = temp_path("serve_racy.log");
  ServeConfig cfg;
  cfg.spec = base_spec();
  cfg.log_path = log_path;
  CoverageService svc(std::move(cfg));
  svc.start();
  svc.submit_event_line("fail_nodes count=3 pick=random");
  svc.submit_event_line("add_nodes count=5 deploy=corner");
  svc.submit_event_line("drain_battery fraction=0.2");
  svc.stop();

  std::ostringstream served, replayed;
  svc.write_state(served);
  replay_log_state(log_path, replayed);
  EXPECT_EQ(served.str(), replayed.str());
}

TEST(Replay, RejectedEventsAreNotLoggedAndDoNotPerturbState) {
  const std::string log_path = temp_path("serve_rejected.log");
  ServeConfig cfg;
  cfg.spec = base_spec();
  cfg.log_path = log_path;
  CoverageService svc(std::move(cfg));
  svc.start();
  svc.drain();
  // A jam swallowing the whole domain: parses fine, but apply_event throws
  // before touching the world, so the loop rejects it without a phase.
  svc.submit_event_line("jam_region x0=0.0 y0=0.0 x1=1.0 y1=1.0");
  svc.submit_event_line("fail_nodes count=2 pick=random");
  svc.stop();

  EXPECT_EQ(svc.stats().events_rejected, 1u);
  EXPECT_EQ(svc.stats().events_applied, 1u);
  std::ostringstream served, replayed;
  svc.write_state(served);
  replay_log_state(log_path, replayed);
  EXPECT_EQ(served.str(), replayed.str());
}

TEST(Replay, AbortPathStaysReplayable) {
  const std::string log_path = temp_path("serve_abort.log");
  ServeConfig cfg;
  cfg.spec = base_spec();
  cfg.log_path = log_path;
  CoverageService svc(std::move(cfg));
  svc.start();
  svc.drain();
  svc.submit_event_line("fail_nodes count=23 pick=random");  // 24 - 23 < k
  svc.drain();
  EXPECT_TRUE(svc.stats().aborted);
  EXPECT_THROW(svc.submit_event_line("fail_nodes count=1 pick=random"),
               std::runtime_error);
  svc.stop();

  std::ostringstream served, replayed;
  svc.write_state(served);
  replay_log_state(log_path, replayed);
  EXPECT_EQ(served.str(), replayed.str());
}

TEST(Service, RejectsSpecWithTimeline) {
  ServeConfig cfg;
  cfg.spec = base_spec();
  cfg.spec.events.push_back({});
  EXPECT_THROW(CoverageService svc(std::move(cfg)), std::runtime_error);
}

// ----------------------------------------------------------- protocol ----

/// One scripted request against a fresh drained service.
std::string ask(CoverageService& svc, const std::string& line) {
  return handle_line(svc, line).response;
}

TEST(Protocol, SessionAnswersEveryOp) {
  ServeConfig cfg;
  cfg.spec = base_spec();
  CoverageService svc(std::move(cfg));
  svc.start();
  svc.drain();

  std::string op;
  double num = 0.0;
  bool flag = false;

  const std::string knn = ask(svc, R"({"op":"knn","x":50,"y":50,"k":3})");
  EXPECT_TRUE(flatjson::get_bool(knn, "ok", &flag) && flag) << knn;
  EXPECT_TRUE(flatjson::get_number(knn, "k", &num));
  EXPECT_EQ(num, 3.0);

  const std::string cov50 = ask(svc, R"({"op":"coverage","x":50,"y":50})");
  EXPECT_TRUE(flatjson::get_bool(cov50, "covered_k", &flag)) << cov50;
  EXPECT_TRUE(flatjson::get_number(cov50, "depth", &num));
  EXPECT_GE(num, 2.0);  // converged 2-coverage

  const std::string outside =
      ask(svc, R"({"op":"coverage","x":-50,"y":-50})");
  EXPECT_TRUE(flatjson::get_bool(outside, "in_domain", &flag));
  EXPECT_FALSE(flag);

  const std::string load = ask(svc, R"({"op":"load"})");
  EXPECT_TRUE(flatjson::get_number(load, "nodes", &num));
  EXPECT_EQ(num, 24.0);

  const std::string ev = ask(
      svc, R"({"op":"event","spec":"fail_nodes count=2 pick=random"})");
  EXPECT_TRUE(flatjson::get_bool(ev, "ok", &flag) && flag) << ev;
  EXPECT_TRUE(flatjson::get_number(ev, "id", &num));
  EXPECT_EQ(num, 1.0);

  const std::string drain = ask(svc, R"({"op":"drain"})");
  EXPECT_TRUE(flatjson::get_bool(drain, "converged", &flag) && flag);

  const std::string stats = ask(svc, R"({"op":"stats"})");
  EXPECT_TRUE(flatjson::get_number(stats, "events_applied", &num));
  EXPECT_EQ(num, 1.0);
  EXPECT_TRUE(flatjson::get_number(stats, "nodes", &num));
  EXPECT_EQ(num, 22.0);

  const std::string health = ask(svc, R"({"op":"health"})");
  EXPECT_TRUE(flatjson::get_string(health, "hb", &op));
  EXPECT_EQ(op, "serve");

  const std::string bad_event =
      ask(svc, R"({"op":"event","spec":"explode count=1"})");
  EXPECT_TRUE(flatjson::get_bool(bad_event, "ok", &flag));
  EXPECT_FALSE(flag);
  EXPECT_TRUE(flatjson::get_string(bad_event, "error", &op));

  const std::string unknown = ask(svc, R"({"op":"frobnicate"})");
  EXPECT_TRUE(flatjson::get_bool(unknown, "ok", &flag));
  EXPECT_FALSE(flag);
  EXPECT_EQ(handle_line(svc, R"({"op":"frobnicate"})").action,
            HandleAction::kRespond);
  EXPECT_EQ(handle_line(svc, R"({"op":"shutdown"})").action,
            HandleAction::kShutdown);
}

TEST(Protocol, StdioTransportRunsAScriptedSession) {
  ServeConfig cfg;
  cfg.spec = base_spec();
  CoverageService svc(std::move(cfg));
  svc.start();

  std::istringstream in(
      "{\"op\":\"event\",\"spec\":\"fail_nodes count=2 pick=random\"}\n"
      "\n"
      "{\"op\":\"drain\"}\n"
      "{\"op\":\"stats\"}\n"
      "{\"op\":\"shutdown\"}\n"
      "{\"op\":\"stats\"}\n");  // after shutdown: must not be answered
  std::ostringstream out;
  const int handled = serve_stdio(svc, in, out);
  EXPECT_EQ(handled, 4);
  EXPECT_FALSE(svc.running());

  std::vector<std::string> lines;
  std::istringstream split(out.str());
  for (std::string l; std::getline(split, l);) lines.push_back(l);
  ASSERT_EQ(lines.size(), 4u);
  bool flag = false;
  EXPECT_TRUE(flatjson::get_bool(lines[3], "stopping", &flag) && flag);
}

TEST(Protocol, TcpRoundTripOnEphemeralPort) {
  ServeConfig cfg;
  cfg.spec = base_spec();
  CoverageService svc(std::move(cfg));
  svc.start();

  TcpServer server(svc, /*port=*/0);
  ASSERT_GT(server.port(), 0);
  std::thread accept_thread([&] { server.serve(); });

  // Plain blocking client socket.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request =
      "{\"op\":\"event\",\"spec\":\"fail_nodes count=2 pick=random\"}\n"
      "{\"op\":\"drain\"}\n"
      "{\"op\":\"load\"}\n"
      "{\"op\":\"shutdown\"}\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  accept_thread.join();
  EXPECT_FALSE(svc.running());

  std::vector<std::string> lines;
  std::istringstream split(response);
  for (std::string l; std::getline(split, l);) lines.push_back(l);
  ASSERT_EQ(lines.size(), 4u);
  double nodes = 0.0;
  EXPECT_TRUE(flatjson::get_number(lines[2], "nodes", &nodes));
  EXPECT_EQ(nodes, 22.0);
  bool flag = false;
  EXPECT_TRUE(flatjson::get_bool(lines[3], "stopping", &flag) && flag);
}

// ---------------------------------------------------- concurrency (TSan) ----

// N reader threads hammer snapshot queries while the round loop applies a
// stream of churn events. Run under TSan in CI (obs-tsan job). Each reader
// asserts the consistency contract: epochs never go backwards, and every
// k-NN answer is internally consistent with the snapshot that produced it.
TEST(ServeStress, ConcurrentReadersSeeConsistentEpochs) {
  ServeConfig cfg;
  cfg.spec = base_spec();
  cfg.spec.max_rounds = 60;
  CoverageService svc(std::move(cfg));
  svc.start();

  constexpr int kReaders = 4;
  constexpr int kIters = 300;
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&svc, &failed, r] {
      std::uint64_t last_epoch = 0;
      for (int i = 0; i < kIters; ++i) {
        const auto snap = svc.snapshot();
        const auto& meta = snap->meta();
        if (meta.epoch < last_epoch) {
          failed.store(true);
          return;
        }
        last_epoch = meta.epoch;
        // Self-consistency: the answer reflects this snapshot alone.
        const geom::Vec2 q{10.0 + 7.0 * r, 20.0 + 3.0 * (i % 11)};
        const auto nodes = snap->closest_nodes(q, 3);
        if (nodes.size() != static_cast<std::size_t>(
                                std::min(3, snap->size())) ||
            snap->size() < 2) {
          failed.store(true);
          return;
        }
        for (std::size_t j = 1; j < nodes.size(); ++j)
          if (nodes[j].dist < nodes[j - 1].dist) {
            failed.store(true);
            return;
          }
        (void)snap->coverage_depth(q);
        (void)svc.stats();
      }
    });
  }

  // Writer: interleave accepted churn (and one rejected event) while the
  // readers run.
  for (int burst = 0; burst < 3; ++burst) {
    svc.submit_event_line("fail_nodes count=1 pick=random");
    svc.submit_event_line("add_nodes count=1 deploy=uniform");
  }
  // Whole-domain jam: accepted into the queue, rejected at apply time.
  svc.submit_event_line("jam_region x0=0.0 y0=0.0 x1=1.0 y1=1.0");

  for (std::thread& t : readers) t.join();
  svc.stop();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(svc.stats().events_rejected, 1u);
  EXPECT_EQ(svc.stats().events_applied, 6u);
}

// -------------------------------------------------------- event log I/O ----

TEST(EventLog, HeaderAndAppendsAreFlushedScenarioLines) {
  const std::string path = temp_path("event_log_basic.scn");
  scenario::ScenarioSpec spec = base_spec();
  EventLog log(path, spec);
  EXPECT_TRUE(log.enabled());

  scenario::Event ev = scenario::parse_event_body("fail_nodes count=2");
  ev.trigger = scenario::Trigger::kAtRound;
  ev.round = 17;
  log.append(ev);
  EXPECT_EQ(log.events_written(), 1u);

  // Parseable mid-session thanks to the per-append flush.
  const scenario::ScenarioSpec re = scenario::load_scenario_file(path);
  EXPECT_EQ(re.name, "serve_test");
  ASSERT_EQ(re.events.size(), 1u);
  EXPECT_EQ(re.events[0].round, 17);
  EXPECT_EQ(re.events[0].trigger, scenario::Trigger::kAtRound);
}

TEST(EventLog, DisabledLogIsInert) {
  scenario::ScenarioSpec spec = base_spec();
  EventLog log("", spec);
  EXPECT_FALSE(log.enabled());
  scenario::Event ev = scenario::parse_event_body("fail_nodes count=1");
  log.append(ev);  // no-op, no throw
  EXPECT_EQ(log.events_written(), 0u);
}

}  // namespace
}  // namespace laacad::serve
