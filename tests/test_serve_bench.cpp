// serve_bench contracts: the `.wl` workload format round-trips and fails
// loudly, the expanded request schedule is a pure function of the spec,
// and a full bench run against an in-process daemon over real loopback TCP
// produces a report whose "deterministic" subtree is byte-identical across
// runs and across engine thread counts — while the run itself completes
// with zero protocol and transport errors.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/flatjson.hpp"
#include "scenario/spec.hpp"
#include "serve/bench.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"

namespace laacad::serve {
namespace {

constexpr const char* kTestWorkload = R"(
name        bench_test
requests    120
rate        0            # closed loop: the fast, clock-independent mode
connections 2
seed        5
knn_k       4
mix         knn=4 coverage=2 load=1 stats=1 health=1
churn       every=30 fail_nodes count=1 pick=random
)";

constexpr const char* kBaseSpec = R"(
name      serve_bench_test
domain    square
side      200
nodes     24
k         2
seed      9
epsilon   0.5
max_rounds 120
battery   2.0e6
grid_resolution 5
)";

// ------------------------------------------------------ .wl round trip ----

TEST(Workload, ParseFormatIdentity) {
  const WorkloadSpec spec = parse_workload_string(kTestWorkload);
  EXPECT_EQ(spec.name, "bench_test");
  EXPECT_EQ(spec.requests, 120);
  EXPECT_EQ(spec.rate, 0.0);
  EXPECT_EQ(spec.connections, 2);
  EXPECT_EQ(spec.seed, 5u);
  EXPECT_EQ(spec.knn_k, 4);
  EXPECT_EQ(spec.mix_knn, 4);
  EXPECT_EQ(spec.mix_health, 1);
  ASSERT_EQ(spec.churn.size(), 1u);
  EXPECT_EQ(spec.churn[0].every, 30);
  EXPECT_EQ(spec.churn[0].body, "fail_nodes count=1 pick=random");

  // Canonical echo is a fixed point: format(parse(format(spec))) stabilizes
  // after one round.
  const std::string once = format_workload(spec);
  const std::string twice = format_workload(parse_workload_string(once));
  EXPECT_EQ(once, twice);
}

TEST(Workload, ShippedWorkloadsParse) {
  for (const char* name : {"serve_mix.wl", "serve_smoke.wl"}) {
    const std::string path =
        std::string(LAACAD_SOURCE_DIR) + "/bench/workloads/" + name;
    const WorkloadSpec spec = load_workload_file(path);
    EXPECT_GT(spec.requests, 0) << name;
    EXPECT_FALSE(expand_schedule(spec, 300.0).empty()) << name;
  }
}

TEST(Workload, ParseErrorsNameTheLine) {
  EXPECT_THROW(parse_workload_string("requests nope\n"), std::runtime_error);
  EXPECT_THROW(parse_workload_string("bogus_key 3\n"), std::runtime_error);
  EXPECT_THROW(parse_workload_string("mix knn\n"), std::runtime_error);
  EXPECT_THROW(parse_workload_string("requests 10\nmix knn=0\n"),
               std::runtime_error);  // weights sum to zero
  EXPECT_THROW(parse_workload_string("churn every=10 not_an_event x=1\n"),
               std::runtime_error);  // churn body validated at parse time
  try {
    parse_workload_string("name ok\nrequests -3\n");
    FAIL() << "negative requests accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("requests"), std::string::npos);
  }
}

// ------------------------------------------------- schedule expansion ----

TEST(Workload, ScheduleIsAPureFunctionOfSpec) {
  const WorkloadSpec spec = parse_workload_string(kTestWorkload);
  const auto a = expand_schedule(spec, 200.0);
  const auto b = expand_schedule(spec, 200.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].op, b[i].op) << i;
    EXPECT_EQ(a[i].line, b[i].line) << i;
  }

  // 120 queries + one churn event per 30 queries.
  std::map<std::string, int> per_op;
  for (const ScheduledRequest& r : a) ++per_op[r.op];
  int queries = 0;
  for (const auto& [op, n] : per_op)
    if (op != "event") queries += n;
  EXPECT_EQ(queries, 120);
  EXPECT_EQ(per_op["event"], 4);
  // Every weighted verb actually occurs at this size.
  for (const char* op : {"knn", "coverage", "load", "stats", "health"})
    EXPECT_GT(per_op[op], 0) << op;

  // A different seed reshuffles; a different side rescales coordinates.
  WorkloadSpec other = spec;
  other.seed = 6;
  const auto c = expand_schedule(other, 200.0);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size() && !any_diff; ++i)
    any_diff = a[i].line != c[i].line;
  EXPECT_TRUE(any_diff);
}

// ------------------------------------------------------- full TCP run ----

/// One complete bench pass against a fresh in-process daemon at the given
/// engine thread count; returns the rendered report document.
std::string run_report(int num_threads) {
  scenario::ScenarioSpec spec = scenario::parse_scenario_string(kBaseSpec);
  spec.num_threads = num_threads;
  const double side = spec.side;

  ServeConfig cfg;
  cfg.spec = std::move(spec);
  CoverageService svc(std::move(cfg));
  svc.start();
  TcpServer server(svc, /*port=*/0);
  std::thread server_thread([&] { server.serve(); });

  const WorkloadSpec wl = parse_workload_string(kTestWorkload);
  const BenchResult result =
      run_bench(wl, side, "127.0.0.1", server.port(), /*shutdown_after=*/true);
  server_thread.join();

  // A healthy closed-loop run answers everything, correctly.
  EXPECT_EQ(result.transport_errors, 0u);
  std::uint64_t ok = 0, errors = 0, scheduled = 0;
  for (const BenchVerbStats& v : result.per_op) {
    ok += v.ok;
    errors += v.errors;
    scheduled += v.scheduled;
  }
  EXPECT_EQ(errors, 0u);
  EXPECT_EQ(ok, scheduled);
  EXPECT_FALSE(result.final_stats.empty());

  std::ostringstream out;
  write_bench_report(result, out);
  return out.str();
}

TEST(ServeBench, DeterministicSubtreeIsByteStableAcrossRunsAndThreads) {
  const std::string first = run_report(1);
  const std::string again = run_report(1);
  const std::string threaded = run_report(2);

  // Reports are single JSON documents; compare the deterministic subtree
  // byte-for-byte after collapsing to one line (get_raw needs one line).
  const auto deterministic = [](const std::string& report) {
    std::string flat;
    flat.reserve(report.size());
    for (const char c : report)
      if (c != '\n') flat += c;
    // Indented documents put spaces after ':' and between items; the
    // subtree is still a byte-range slice, so identical layout + identical
    // values => identical slice.
    std::string raw;
    EXPECT_TRUE(flatjson::get_raw(flat, "deterministic", &raw)) << report;
    return raw;
  };

  const std::string base = deterministic(first);
  EXPECT_FALSE(base.empty());
  EXPECT_EQ(deterministic(again), base);
  EXPECT_EQ(deterministic(threaded), base);

  // And the subtree carries what CI asserts on.
  std::string flat = base;
  double n = -1.0;
  EXPECT_TRUE(flatjson::get_number(flat, "protocol_errors", &n));
  EXPECT_EQ(n, 0.0);
  EXPECT_TRUE(flatjson::get_number(flat, "transport_errors", &n));
  EXPECT_EQ(n, 0.0);
  EXPECT_TRUE(flatjson::get_number(flat, "responses_ok", &n));
  EXPECT_EQ(n, 124.0);  // 120 queries + 4 churn events

  // The timing side of the same report embeds the server-side breakdown.
  // "latency" also names the per-op client blocks, so scope the scan to
  // the "server" subtree first.
  std::string timing_flat;
  for (const char c : first)
    if (c != '\n') timing_flat += c;
  std::string server_raw, raw;
  ASSERT_TRUE(flatjson::get_raw(timing_flat, "server", &server_raw)) << first;
  EXPECT_TRUE(flatjson::get_raw(server_raw, "serve", &raw));
  EXPECT_NE(raw.find("snapshot_age_s"), std::string::npos);
  EXPECT_TRUE(flatjson::get_raw(server_raw, "latency", &raw));
  EXPECT_NE(raw.find("\"queue\""), std::string::npos);
  EXPECT_NE(raw.find("\"serialize\""), std::string::npos);
}

}  // namespace
}  // namespace laacad::serve
