#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace laacad {
namespace {

TEST(Summary, BasicMoments) {
  Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(1.25), 1e-12);
}

TEST(Summary, EmptyAndSingle) {
  // Empty aggregates are NaN, not a fabricated 0 — JsonWriter maps
  // non-finite to null, so downstream metric files degrade cleanly.
  Summary e;
  EXPECT_EQ(e.count(), 0u);
  EXPECT_TRUE(std::isnan(e.mean()));
  EXPECT_DOUBLE_EQ(e.variance(), 0.0);
  Summary s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Mean, EmptyIsNaN) {
  EXPECT_TRUE(std::isnan(mean({})));
  EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> xs = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
}

TEST(Percentile, EdgeCases) {
  EXPECT_TRUE(std::isnan(percentile({}, 50)));
  EXPECT_TRUE(std::isnan(percentile({}, 0)));
  // A singleton is every percentile.
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 50), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100), 7.0);
  // Out-of-range p clamps to the extremes.
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, -5), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 140), 2.0);
}

TEST(Ci95HalfWidth, Convention) {
  Summary e;
  EXPECT_TRUE(std::isnan(ci95_half_width(e)));
  Summary one = summarize({4.0});
  EXPECT_DOUBLE_EQ(ci95_half_width(one), 0.0);
  Summary s = summarize({1.0, 3.0});  // population stddev 1, n = 2
  EXPECT_NEAR(ci95_half_width(s), 1.96 / std::sqrt(2.0), 1e-12);
}

TEST(JainFairness, Extremes) {
  EXPECT_DOUBLE_EQ(jain_fairness({5, 5, 5, 5}), 1.0);
  EXPECT_NEAR(jain_fairness({1, 0, 0, 0}), 0.25, 1e-12);
  // Empty input is NaN (JSON null) like mean()/percentile() — a group with
  // no members has no fairness, not a perfect one. All-zero (non-empty)
  // loads remain degenerate-but-fair.
  EXPECT_TRUE(std::isnan(jain_fairness({})));
  EXPECT_DOUBLE_EQ(jain_fairness({0, 0, 0}), 1.0);
}

TEST(Summary, VarianceStableAtLargeMagnitude) {
  // mean ~1e9, stddev ~1: the old sumsq - mean^2 formulation cancels to
  // noise here (sumsq ~1e18 eats the O(1) variance entirely); Welford
  // accumulation keeps full precision.
  const double base = 1.0e9;
  Summary s = summarize({base - 1.0, base, base + 1.0});
  EXPECT_DOUBLE_EQ(s.mean(), base);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.0 / 3.0), 1e-9);

  // Same spread, even larger offset: still exact to double precision.
  const double big = 4.0e12;
  Summary t = summarize({big - 2.0, big + 2.0});
  EXPECT_NEAR(t.variance(), 4.0, 1e-6);
}

TEST(Rng, DeterministicWithSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
    int k = rng.uniform_int(5, 9);
    EXPECT_GE(k, 5);
    EXPECT_LE(k, 9);
  }
}

TEST(Rng, DeriveIsPureAndOrderSensitive) {
  // Pure function of its arguments: no generator state involved.
  EXPECT_EQ(Rng::derive(42, 7), Rng::derive(42, 7));
  // Nearby streams decorrelate (full splitmix64 avalanche).
  EXPECT_NE(Rng::derive(42, 0), Rng::derive(42, 1));
  EXPECT_NE(Rng::derive(42, 0), Rng::derive(43, 0));
  // Never the identity, even at the zero fixed point of naive mixes.
  EXPECT_NE(Rng::derive(0, 0), 0u);
  // Multi-level derivation chains and is order-sensitive.
  EXPECT_EQ(Rng::derive(9, 1, 2), Rng::derive(Rng::derive(9, 1), 2));
  EXPECT_NE(Rng::derive(9, 1, 2), Rng::derive(9, 2, 1));
  // Derived seeds feed ordinary generators reproducibly.
  Rng a(Rng::derive(5, 3)), b(Rng::derive(5, 3));
  EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(9);
  Rng c1 = parent.fork();
  Rng c2 = parent.fork();
  // Child streams should differ from each other.
  bool differ = false;
  for (int i = 0; i < 8; ++i)
    if (c1.uniform01() != c2.uniform01()) differ = true;
  EXPECT_TRUE(differ);
}

TEST(Rng, GaussianMomentsRoughly) {
  Rng rng(123);
  Summary s;
  for (int i = 0; i < 20000; ++i) s.add(rng.gaussian(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(TextTable, AlignedOutput) {
  TextTable t({"N", "R*"});
  t.add_row({"1000", TextTable::num(3.0351, 3)});
  t.add_row({"20", "1.5"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("N"), std::string::npos);
  EXPECT_NE(s.find("3.035"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  // Rows have equal alignment: each line starts at column 0 with the value.
  EXPECT_EQ(s.find("1000"), s.find('\n', s.find('\n') + 1) + 1);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::integer(42), "42");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = "/tmp/laacad_test_csv.csv";
  {
    CsvWriter w(path, {"a", "b"});
    ASSERT_TRUE(w.ok());
    w.add_row({"1", "2"});
    w.add_row({"3"});  // short row padded
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,");
}

}  // namespace
}  // namespace laacad
