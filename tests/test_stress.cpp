// Stress and degeneracy suite: configurations that historically break
// Voronoi/clipping code — collinear sites, co-located clusters, lattice
// symmetry (4-fold ties), extreme aspect ratios, and tiny domains.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "coverage/critical.hpp"
#include "coverage/grid_checker.hpp"
#include "laacad/engine.hpp"
#include "voronoi/adaptive.hpp"
#include "voronoi/orderk.hpp"
#include "voronoi/sites.hpp"
#include "wsn/deployment.hpp"

namespace laacad {
namespace {

using geom::Ring;
using geom::Vec2;

Ring window(double w, double h) { return {{0, 0}, {w, 0}, {w, h}, {0, h}}; }

bool in_cells(const std::vector<vor::OrderKCell>& cells, Vec2 v) {
  for (const auto& c : cells)
    if (geom::contains_point(c.poly, v, 1e-6)) return true;
  return false;
}

TEST(Stress, CollinearSites) {
  std::vector<Vec2> sites;
  for (int i = 0; i < 8; ++i) sites.push_back({10.0 + i * 10.0, 50.0});
  sites = vor::separate_sites(sites);
  for (int k : {1, 2, 3}) {
    double total = 0.0;
    for (int i = 0; i < 8; ++i) {
      auto cells = vor::dominating_region_cells(sites, i, k, window(100, 100));
      for (const auto& c : cells) total += c.area();
    }
    EXPECT_NEAR(total, k * 10000.0, 10.0) << "k=" << k;
  }
}

TEST(Stress, SquareLatticeFourFoldTies) {
  // Square lattices put four sites on every order-2 Voronoi vertex — the
  // classic degeneracy. Membership must still match brute force.
  std::vector<Vec2> sites;
  for (int y = 0; y < 5; ++y)
    for (int x = 0; x < 5; ++x)
      sites.push_back({10.0 + x * 20.0, 10.0 + y * 20.0});
  sites = vor::separate_sites(sites);
  Rng rng(5);
  for (int k : {1, 2, 4}) {
    const int i = 12;  // center site
    auto cells = vor::dominating_region_cells(sites, i, k, window(100, 100));
    ASSERT_FALSE(cells.empty());
    int checked = 0;
    for (int t = 0; t < 400; ++t) {
      Vec2 v{rng.uniform(0, 100), rng.uniform(0, 100)};
      const double di = geom::dist(sites[12], v);
      bool tie = false;
      for (std::size_t j = 0; j < sites.size(); ++j) {
        if (j != 12 && std::abs(geom::dist(sites[j], v) - di) < 1e-3)
          tie = true;
      }
      if (tie) continue;
      ++checked;
      EXPECT_EQ(vor::closer_count(sites, i, v) <= k - 1, in_cells(cells, v))
          << "k=" << k << " v=(" << v.x << "," << v.y << ")";
    }
    EXPECT_GT(checked, 250);
  }
}

TEST(Stress, CoLocatedClusterSites) {
  // k co-located clusters (the paper's equilibrium shape) as *input*.
  Rng rng(6);
  auto anchors = wsn::deploy_uniform(wsn::Domain::rectangle(100, 100), 8, rng);
  auto sites = vor::separate_sites(wsn::stacked(anchors, 3, rng, 1e-9));
  for (std::size_t i = 0; i < sites.size(); i += 5) {
    auto cells = vor::dominating_region_cells(sites, static_cast<int>(i), 3,
                                              window(100, 100));
    EXPECT_FALSE(cells.empty()) << "site " << i;
  }
}

TEST(Stress, ExtremeAspectRatioDomain) {
  wsn::Domain d = wsn::Domain::rectangle(1000, 20);
  Rng rng(7);
  wsn::Network net(&d, wsn::deploy_uniform(d, 15, rng), 200.0);
  core::LaacadConfig cfg;
  cfg.k = 1;
  cfg.epsilon = 0.5;
  cfg.max_rounds = 250;
  core::Engine engine(net, cfg);
  auto res = engine.run();
  EXPECT_TRUE(res.converged);
  const auto exact = cov::critical_point_coverage(d, cov::sensing_disks(net));
  EXPECT_GE(exact.min_depth, 1);
  // In a thin strip the nodes should line up: ranges ~ strip length / 2N.
  EXPECT_LT(res.final_max_range, 80.0);
}

TEST(Stress, TinyDomainManyNodes) {
  wsn::Domain d = wsn::Domain::rectangle(10, 10);
  Rng rng(8);
  wsn::Network net(&d, wsn::deploy_uniform(d, 25, rng), 5.0);
  core::LaacadConfig cfg;
  cfg.k = 3;
  cfg.epsilon = 0.05;
  cfg.max_rounds = 200;
  core::Engine engine(net, cfg);
  auto res = engine.run();
  const auto exact = cov::critical_point_coverage(d, cov::sensing_disks(net));
  EXPECT_GE(exact.min_depth, 3);
  EXPECT_LT(res.final_max_range, 5.0);
}

TEST(Stress, AdaptiveSolverOnClusteredField) {
  // Gaussian blob: high density center, sparse fringe — the adaptive radius
  // must still certify every node.
  wsn::Domain d = wsn::Domain::rectangle(400, 400);
  Rng rng(9);
  auto pts = wsn::deploy_gaussian(d, 120, {200, 200}, 40.0, rng);
  auto sites = vor::separate_sites(pts);
  wsn::SpatialGrid grid(sites, 40.0);
  for (int i = 0; i < 120; i += 7) {
    auto res = vor::compute_dominating_region(sites, grid, i, 2, d.bbox());
    EXPECT_FALSE(res.cells.empty()) << "node " << i;
    // Region contains its own site.
    bool contains = false;
    for (const auto& c : res.cells)
      if (geom::contains_point(c.poly, sites[static_cast<std::size_t>(i)],
                               1e-6))
        contains = true;
    EXPECT_TRUE(contains) << "node " << i;
  }
}

TEST(Stress, KLargerThanHalfPopulation) {
  std::vector<Vec2> sites;
  Rng rng(10);
  for (int i = 0; i < 12; ++i)
    sites.push_back({rng.uniform(10, 90), rng.uniform(10, 90)});
  sites = vor::separate_sites(sites);
  // k = 9 of 12: regions are huge unions; membership must still be exact.
  auto cells = vor::dominating_region_cells(sites, 4, 9, window(100, 100));
  ASSERT_FALSE(cells.empty());
  int checked = 0;
  for (int t = 0; t < 300; ++t) {
    Vec2 v{rng.uniform(0, 100), rng.uniform(0, 100)};
    const double di = geom::dist(sites[4], v);
    bool tie = false;
    for (std::size_t j = 0; j < sites.size(); ++j)
      if (j != 4 && std::abs(geom::dist(sites[j], v) - di) < 1e-4) tie = true;
    if (tie) continue;
    ++checked;
    EXPECT_EQ(vor::closer_count(sites, 4, v) <= 8, in_cells(cells, v));
  }
  EXPECT_GT(checked, 200);
}

}  // namespace
}  // namespace laacad
