// common::ThreadPool / parallel_for: partition coverage, exception
// propagation, nested-use rejection, and the 0/1/N worker-count contract.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"

namespace laacad::common {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    for (int n : {0, 1, 2, 7, 100}) {
      std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
      pool.run(n, [&](int i) { ++hits[static_cast<std::size_t>(i)]; });
      for (int i = 0; i < n; ++i)
        EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "threads=" << threads << " n=" << n << " i=" << i;
    }
  }
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1);
  std::atomic<int> sum{0};
  pool.run(1000, [&](int i) { sum += i; });
  EXPECT_EQ(sum.load(), 1000 * 999 / 2);
}

TEST(ThreadPool, NegativeThreadCountRejected) {
  EXPECT_THROW(ThreadPool(-1), std::invalid_argument);
}

TEST(ThreadPool, PropagatesLowestChunkException) {
  // Multiple chunks throw; the rethrown exception must be the one from the
  // lowest-indexed chunk (deterministic regardless of timing). With 4
  // threads and n = 4 each chunk is a single index.
  ThreadPool pool(4);
  try {
    pool.run(4, [](int i) {
      if (i >= 2) throw std::runtime_error("chunk " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 2");
  }
}

TEST(ThreadPool, PoolRemainsUsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run(8, [](int) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.run(8, [&](int) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, NestedRunRejected) {
  ThreadPool pool(2);
  std::atomic<bool> nested_threw{false};
  pool.run(2, [&](int) {
    try {
      pool.run(2, [](int) {});
    } catch (const std::logic_error&) {
      nested_threw = true;
    }
  });
  EXPECT_TRUE(nested_threw.load());
}

TEST(ParallelFor, NullPoolRunsSerially) {
  std::vector<int> order;
  parallel_for(nullptr, 5, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, SingleThreadPoolMatchesSerialOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  parallel_for(&pool, 5, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  // Index-addressed writes must land identically for every pool size.
  const int n = 257;
  std::vector<double> reference(static_cast<std::size_t>(n));
  parallel_for(nullptr, n,
               [&](int i) { reference[static_cast<std::size_t>(i)] =
                                static_cast<double>(i) * 1.5 + 1.0; });
  for (int threads : {2, 5, 8}) {
    ThreadPool pool(threads);
    std::vector<double> out(static_cast<std::size_t>(n));
    parallel_for(&pool, n, [&](int i) {
      out[static_cast<std::size_t>(i)] = static_cast<double>(i) * 1.5 + 1.0;
    });
    EXPECT_EQ(out, reference) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace laacad::common
