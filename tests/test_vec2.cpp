#include <gtest/gtest.h>

#include <sstream>

#include "geometry/vec2.hpp"

namespace laacad::geom {
namespace {

TEST(Vec2, ArithmeticOperators) {
  Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(a / 2.0, Vec2(0.5, 1.0));
  EXPECT_EQ(-a, Vec2(-1.0, -2.0));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 a{1.0, 1.0};
  a += {2.0, 3.0};
  EXPECT_EQ(a, Vec2(3.0, 4.0));
  a -= {1.0, 1.0};
  EXPECT_EQ(a, Vec2(2.0, 3.0));
  a *= 2.0;
  EXPECT_EQ(a, Vec2(4.0, 6.0));
}

TEST(Vec2, NormAndDistance) {
  Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(dist(Vec2{0, 0}, a), 5.0);
  EXPECT_DOUBLE_EQ(dist2(Vec2{0, 0}, a), 25.0);
}

TEST(Vec2, NormalizedUnitLength) {
  Vec2 a{3.0, 4.0};
  EXPECT_NEAR(a.normalized().norm(), 1.0, 1e-15);
  // Zero vector stays zero instead of dividing by zero.
  EXPECT_EQ(Vec2(0, 0).normalized(), Vec2(0, 0));
}

TEST(Vec2, DotAndCross) {
  Vec2 a{1.0, 0.0}, b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 0.0);
  EXPECT_DOUBLE_EQ(cross(a, b), 1.0);
  EXPECT_DOUBLE_EQ(cross(b, a), -1.0);
}

TEST(Vec2, PerpIsCcwRotation) {
  Vec2 a{1.0, 0.0};
  EXPECT_EQ(a.perp(), Vec2(0.0, 1.0));
  EXPECT_NEAR(dot(a, a.perp()), 0.0, 1e-15);
}

TEST(Vec2, RotatedQuarterTurn) {
  Vec2 a{1.0, 0.0};
  Vec2 r = a.rotated(M_PI / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-15);
  EXPECT_NEAR(r.y, 1.0, 1e-15);
}

TEST(Vec2, AngleMatchesAtan2) {
  EXPECT_NEAR(Vec2(1, 1).angle(), M_PI / 4.0, 1e-15);
  EXPECT_NEAR(Vec2(-1, 0).angle(), M_PI, 1e-15);
}

TEST(Vec2, LerpAndMidpoint) {
  Vec2 a{0, 0}, b{10, 20};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), Vec2(5, 10));
  EXPECT_EQ(midpoint(a, b), Vec2(5, 10));
}

TEST(Orientation, BasicTurns) {
  EXPECT_EQ(orientation({0, 0}, {1, 0}, {1, 1}), 1);   // CCW
  EXPECT_EQ(orientation({0, 0}, {1, 0}, {1, -1}), -1); // CW
  EXPECT_EQ(orientation({0, 0}, {1, 0}, {2, 0}), 0);   // collinear
}

TEST(Orientation, EpsilonAbsorbsTinyPerturbation) {
  EXPECT_EQ(orientation({0, 0}, {1, 0}, {2, 1e-12}), 0);
}

TEST(AlmostEqual, Tolerance) {
  EXPECT_TRUE(almost_equal({1, 1}, {1 + 1e-10, 1 - 1e-10}));
  EXPECT_FALSE(almost_equal({1, 1}, {1 + 1e-6, 1}));
}

TEST(Vec2, StreamOutput) {
  std::ostringstream os;
  os << Vec2{1.5, -2.0};
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

}  // namespace
}  // namespace laacad::geom
