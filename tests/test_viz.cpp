#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "viz/render.hpp"
#include "viz/svg.hpp"
#include "wsn/deployment.hpp"

namespace laacad::viz {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Svg, DocumentStructure) {
  SvgCanvas canvas({{0, 0}, {100, 50}}, 400.0);
  canvas.dot({50, 25}, 3.0, "#ff0000");
  canvas.circle({50, 25}, 10.0, Style{});
  canvas.line({0, 0}, {100, 50}, Style{});
  canvas.polygon({{10, 10}, {20, 10}, {15, 20}}, Style{});
  canvas.text({5, 5}, "hello");
  const std::string s = canvas.to_string();
  EXPECT_NE(s.find("<svg"), std::string::npos);
  EXPECT_NE(s.find("</svg>"), std::string::npos);
  EXPECT_NE(s.find("<circle"), std::string::npos);
  EXPECT_NE(s.find("<polygon"), std::string::npos);
  EXPECT_NE(s.find("<line"), std::string::npos);
  EXPECT_NE(s.find("hello"), std::string::npos);
  // Aspect preserved: height = 400 * 50/100 = 200.
  EXPECT_NE(s.find("height=\"200"), std::string::npos);
}

TEST(Svg, YAxisFlipped) {
  SvgCanvas canvas({{0, 0}, {100, 100}}, 100.0);
  canvas.dot({0, 0}, 1.0, "#000000");
  const std::string s = canvas.to_string();
  // World origin (bottom-left) maps to pixel (0, 100).
  EXPECT_NE(s.find("cx=\"0.00\" cy=\"100.00\""), std::string::npos);
}

TEST(Svg, SaveWritesFile) {
  const std::string path = "/tmp/laacad_viz_test.svg";
  SvgCanvas canvas({{0, 0}, {10, 10}});
  canvas.dot({5, 5}, 2.0, "#123456");
  ASSERT_TRUE(canvas.save(path));
  const std::string s = slurp(path);
  EXPECT_NE(s.find("#123456"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Render, DeploymentAndPartitionSmoke) {
  wsn::Domain d = wsn::Domain::rectangle(100, 100).with_rect_hole({40, 40},
                                                                  {60, 60});
  Rng rng(99);
  wsn::Network net(&d, wsn::deploy_uniform(d, 20, rng), 30.0);
  for (int i = 0; i < net.size(); ++i) net.set_sensing_range(i, 15.0);

  const std::string p1 = "/tmp/laacad_render_dep.svg";
  const std::string p2 = "/tmp/laacad_render_vor.svg";
  const std::string p3 = "/tmp/laacad_render_dom.svg";
  EXPECT_TRUE(render_deployment(p1, net));
  EXPECT_TRUE(render_order_k_partition(p2, net, 2));
  EXPECT_TRUE(render_dominating_region(p3, net, 0, 2));
  // The partition rendering contains many cells; the file should be
  // substantial and well-formed.
  const std::string s = slurp(p2);
  EXPECT_GT(s.size(), 2000u);
  EXPECT_NE(s.find("</svg>"), std::string::npos);
  for (const auto& p : {p1, p2, p3}) std::filesystem::remove(p);
}

}  // namespace
}  // namespace laacad::viz
