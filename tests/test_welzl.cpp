#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "geometry/polygon.hpp"
#include "geometry/welzl.hpp"

namespace laacad::geom {
namespace {

TEST(Welzl, EmptyAndSingle) {
  EXPECT_FALSE(min_enclosing_circle({}).valid());
  Circle c = min_enclosing_circle({{3, 4}});
  EXPECT_EQ(c.center, Vec2(3, 4));
  EXPECT_DOUBLE_EQ(c.radius, 0.0);
}

TEST(Welzl, TwoPoints) {
  Circle c = min_enclosing_circle({{0, 0}, {4, 0}});
  EXPECT_NEAR(c.center.x, 2.0, 1e-9);
  EXPECT_NEAR(c.radius, 2.0, 1e-9);
}

TEST(Welzl, EquilateralTriangle) {
  const double h = std::sqrt(3.0) / 2.0;
  Circle c = min_enclosing_circle({{0, 0}, {1, 0}, {0.5, h}});
  EXPECT_NEAR(c.radius, 1.0 / std::sqrt(3.0), 1e-9);
  EXPECT_NEAR(c.center.x, 0.5, 1e-9);
}

TEST(Welzl, ObtuseTriangleUsesLongestSide) {
  // For an obtuse triangle the MEC is the diameter circle of the long side.
  Circle c = min_enclosing_circle({{0, 0}, {10, 0}, {5, 0.5}});
  EXPECT_NEAR(c.radius, 5.0, 1e-6);
  EXPECT_NEAR(c.center.x, 5.0, 1e-6);
}

TEST(Welzl, SquareCircumcircle) {
  Circle c = min_enclosing_circle({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  EXPECT_NEAR(c.center.x, 1.0, 1e-9);
  EXPECT_NEAR(c.center.y, 1.0, 1e-9);
  EXPECT_NEAR(c.radius, std::sqrt(2.0), 1e-9);
}

TEST(Welzl, CollinearPoints) {
  Circle c = min_enclosing_circle({{0, 0}, {1, 0}, {2, 0}, {5, 0}});
  EXPECT_NEAR(c.radius, 2.5, 1e-9);
  EXPECT_NEAR(c.center.x, 2.5, 1e-9);
}

TEST(Welzl, DuplicatePoints) {
  Circle c = min_enclosing_circle({{1, 1}, {1, 1}, {1, 1}});
  EXPECT_NEAR(c.radius, 0.0, 1e-12);
}

TEST(Welzl, DeterministicAcrossCalls) {
  std::vector<Vec2> pts;
  laacad::Rng rng(3);
  for (int i = 0; i < 50; ++i)
    pts.push_back({rng.uniform(0, 10), rng.uniform(0, 10)});
  Circle a = min_enclosing_circle(pts);
  Circle b = min_enclosing_circle(pts);
  EXPECT_EQ(a.center, b.center);
  EXPECT_EQ(a.radius, b.radius);
}

// Property sweep: for random point clouds the MEC (a) contains all points,
// (b) is supported by at least two points on its boundary, and (c) is no
// larger than a trivial bounding circle.
class WelzlProperty : public ::testing::TestWithParam<int> {};

TEST_P(WelzlProperty, ContainsAllAndTight) {
  laacad::Rng rng(1000 + GetParam());
  std::vector<Vec2> pts;
  const int n = 3 + rng.uniform_int(0, 200);
  for (int i = 0; i < n; ++i)
    pts.push_back({rng.uniform(-100, 100), rng.uniform(-100, 100)});

  Circle c = min_enclosing_circle(pts);
  int on_boundary = 0;
  for (Vec2 p : pts) {
    const double d = dist(c.center, p);
    EXPECT_LE(d, c.radius + 1e-6 * (1.0 + c.radius));
    if (d >= c.radius - 1e-5 * (1.0 + c.radius)) ++on_boundary;
  }
  EXPECT_GE(on_boundary, 2);

  // Compare against a crude but valid enclosing circle (bbox circumcircle).
  BBox bb = bounding_box(pts);
  const double crude = 0.5 * std::hypot(bb.width(), bb.height());
  EXPECT_LE(c.radius, crude + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WelzlProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace laacad::geom
