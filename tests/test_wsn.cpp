#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>

#include "common/stats.hpp"
#include "voronoi/sites.hpp"
#include "wsn/boundary.hpp"
#include "wsn/comm.hpp"
#include "wsn/deployment.hpp"
#include "wsn/energy.hpp"
#include "wsn/localization.hpp"
#include "wsn/network.hpp"
#include "wsn/spatial_grid.hpp"

namespace laacad::wsn {
namespace {

using geom::Vec2;

// ---------------------------------------------------------------- grid ----

TEST(SpatialGrid, WithinMatchesBruteForce) {
  Rng rng(11);
  std::vector<Vec2> pts;
  for (int i = 0; i < 300; ++i)
    pts.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
  SpatialGrid grid(pts, 10.0);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec2 q{rng.uniform(0, 100), rng.uniform(0, 100)};
    const double r = rng.uniform(1.0, 40.0);
    auto got = grid.within(q, r);
    std::vector<int> expect;
    for (int i = 0; i < 300; ++i)
      if (geom::dist(pts[static_cast<size_t>(i)], q) <= r) expect.push_back(i);
    EXPECT_EQ(got, expect);
  }
}

TEST(SpatialGrid, KNearestMatchesBruteForce) {
  Rng rng(13);
  std::vector<Vec2> pts;
  for (int i = 0; i < 200; ++i)
    pts.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
  SpatialGrid grid(pts, 7.0);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec2 q{rng.uniform(0, 100), rng.uniform(0, 100)};
    const int k = rng.uniform_int(1, 12);
    // Exact agreement (indices, not just distances): grid and brute share
    // the canonical (dist2, index) order.
    EXPECT_EQ(grid.k_nearest(q, k), vor::k_nearest_brute(pts, q, k));
  }
}

// Property test: the grid's expanding-radius k_nearest must agree exactly
// with vor::k_nearest_brute over randomized site sets — including the
// `exclude` path and query points far outside the points' bounding box
// (where the pre-fix search could stop at its radius cap with points still
// ungathered, returning a short or wrong answer).
TEST(SpatialGrid, KNearestAgreesWithBruteProperty) {
  Rng rng(29);
  for (int round = 0; round < 8; ++round) {
    const int n = 20 + rng.uniform_int(0, 180);
    std::vector<Vec2> pts;
    pts.reserve(static_cast<std::size_t>(n));
    if (round % 2 == 0) {
      for (int i = 0; i < n; ++i)
        pts.push_back({rng.uniform(0, 200), rng.uniform(0, 200)});
    } else {
      // Clustered: stresses the radius doubling (dense cells, empty bands).
      const int clusters = 3 + rng.uniform_int(0, 3);
      for (int i = 0; i < n; ++i) {
        const double cx = 200.0 * (1 + i % clusters) / (clusters + 1);
        pts.push_back({cx + rng.gaussian(0, 2.0),
                       100.0 + rng.gaussian(0, 2.0)});
      }
    }
    SpatialGrid grid(pts, rng.uniform(2.0, 25.0));
    for (int trial = 0; trial < 40; ++trial) {
      Vec2 q{rng.uniform(0, 200), rng.uniform(0, 200)};
      if (trial % 4 == 0) {  // far outside the bounding box
        q = {rng.uniform(-3000, 5000), rng.uniform(2000, 9000)};
      }
      const int k = rng.uniform_int(1, std::min(n, 15));
      const int exclude = (trial % 3 == 0) ? rng.uniform_int(0, n - 1) : -1;

      auto brute = [&] {
        std::vector<Vec2> kept;
        std::vector<int> back;
        for (int i = 0; i < n; ++i) {
          if (i == exclude) continue;
          kept.push_back(pts[static_cast<std::size_t>(i)]);
          back.push_back(i);
        }
        auto local = vor::k_nearest_brute(kept, q, k);
        std::vector<int> global;
        for (int id : local) global.push_back(back[static_cast<std::size_t>(id)]);
        return global;
      }();
      EXPECT_EQ(grid.k_nearest(q, k, exclude), brute)
          << "round=" << round << " trial=" << trial << " k=" << k
          << " exclude=" << exclude << " q=(" << q.x << "," << q.y << ")";
    }
  }
}

TEST(SpatialGrid, ExcludeSkipsSelf) {
  std::vector<Vec2> pts = {{0, 0}, {1, 0}, {2, 0}};
  SpatialGrid grid(pts, 1.0);
  auto got = grid.k_nearest({0, 0}, 2, /*exclude=*/0);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[1], 2);
}

TEST(SpatialGrid, KLargerThanPopulation) {
  std::vector<Vec2> pts = {{0, 0}, {1, 0}};
  SpatialGrid grid(pts, 1.0);
  EXPECT_EQ(grid.k_nearest({0, 0}, 10).size(), 2u);
}

TEST(SpatialGrid, DefaultConstructedIsEmpty) {
  SpatialGrid grid;
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_TRUE(grid.within({0, 0}, 100.0).empty());
  EXPECT_TRUE(grid.k_nearest({0, 0}, 3).empty());
}

TEST(SpatialGrid, RebuildMatchesFreshConstruction) {
  // Re-binning in place (same dims, shifted dims, grown population) must be
  // indistinguishable from constructing a fresh grid over the new snapshot.
  Rng rng(17);
  std::vector<Vec2> pts;
  for (int i = 0; i < 200; ++i)
    pts.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
  SpatialGrid reused(pts, 10.0);

  for (int round = 0; round < 5; ++round) {
    for (Vec2& p : pts) {  // jiggle within a fraction of a cell
      p.x += rng.uniform(-2.0, 2.0);
      p.y += rng.uniform(-2.0, 2.0);
    }
    if (round == 3)  // population change forces a dimension change
      for (int i = 0; i < 50; ++i)
        pts.push_back({rng.uniform(-50, 150), rng.uniform(-50, 150)});
    reused.rebuild(pts, 10.0);
    const SpatialGrid fresh(pts, 10.0);
    ASSERT_EQ(reused.size(), fresh.size());
    for (int trial = 0; trial < 10; ++trial) {
      const Vec2 q{rng.uniform(0, 100), rng.uniform(0, 100)};
      const double r = rng.uniform(1.0, 30.0);
      EXPECT_EQ(reused.within(q, r), fresh.within(q, r));
      EXPECT_EQ(reused.k_nearest(q, 5), fresh.k_nearest(q, 5));
    }
  }
}

// ------------------------------------------------------------- network ----

TEST(Network, PositionsProjectedIntoDomain) {
  Domain d = Domain::rectangle(100, 100);
  Network net(&d, {{-5, 50}, {50, 50}}, 10.0);
  EXPECT_TRUE(d.contains(net.position(0)));
  EXPECT_EQ(net.position(1), Vec2(50, 50));
}

TEST(Network, OneHopNeighbors) {
  Domain d = Domain::rectangle(100, 100);
  Network net(&d, {{10, 10}, {15, 10}, {50, 50}}, 10.0);
  auto nb = net.one_hop_neighbors(0);
  ASSERT_EQ(nb.size(), 1u);
  EXPECT_EQ(nb[0], 1);
}

TEST(Network, AddRemoveNode) {
  Domain d = Domain::rectangle(100, 100);
  Network net(&d, {{10, 10}}, 10.0);
  NodeId id = net.add_node({20, 20});
  EXPECT_EQ(net.size(), 2);
  EXPECT_EQ(id, 1);
  net.remove_node(0);
  EXPECT_EQ(net.size(), 1);
  EXPECT_EQ(net.node(0).id, 0);  // ids re-densified
  EXPECT_EQ(net.position(0), Vec2(20, 20));
}

TEST(Network, RemoveAfterQueriesReindexesGrid) {
  // The lazy grid was built by a query; a removal must invalidate it so the
  // next query sees re-densified ids, not stale indices into the old list.
  Domain d = Domain::rectangle(100, 100);
  Network net(&d, {{10, 10}, {12, 10}, {90, 90}, {92, 90}}, 5.0);
  EXPECT_EQ(net.one_hop_neighbors(0), std::vector<int>{1});
  EXPECT_EQ(net.one_hop_neighbors(2), std::vector<int>{3});

  net.remove_node(0);  // former 1/2/3 become 0/1/2
  EXPECT_TRUE(net.one_hop_neighbors(0).empty());  // (12,10) now alone
  EXPECT_EQ(net.one_hop_neighbors(1), std::vector<int>{2});
  EXPECT_EQ(net.nodes_within({91, 90}, 5.0), (std::vector<int>{1, 2}));
}

TEST(Network, AddAfterQueriesReindexesGrid) {
  Domain d = Domain::rectangle(100, 100);
  Network net(&d, {{10, 10}}, 5.0);
  EXPECT_TRUE(net.one_hop_neighbors(0).empty());  // grid built

  const NodeId id = net.add_node({12, 10});
  EXPECT_EQ(net.one_hop_neighbors(0), std::vector<int>{id});
  const auto near = net.k_nearest({11, 10}, 2);
  EXPECT_EQ(near.size(), 2u);
}

TEST(Network, InterleavedMutationsAndQueriesStayConsistent) {
  // Alternate queries (forcing grid builds) with add/remove churn; every
  // radius query must match a brute-force scan of the current positions.
  Domain d = Domain::rectangle(200, 200);
  Rng rng(23);
  Network net(&d, deploy_uniform(d, 30, rng), 30.0);
  auto brute = [&](Vec2 q, double r) {
    std::vector<int> out;
    for (int i = 0; i < net.size(); ++i)
      if (dist(net.position(i), q) <= r) out.push_back(i);
    return out;
  };
  for (int step = 0; step < 20; ++step) {
    const Vec2 q{rng.uniform(0, 200), rng.uniform(0, 200)};
    auto got = net.nodes_within(q, 40.0);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, brute(q, 40.0)) << "step " << step;
    if (step % 2 == 0 && net.size() > 1) {
      net.remove_node(rng.uniform_int(0, net.size() - 1));
    } else {
      net.add_node({rng.uniform(0, 200), rng.uniform(0, 200)});
    }
  }
}

TEST(Network, RebindDomainReprojectsNodes) {
  Domain big = Domain::rectangle(200, 200);
  Network net(&big, {{150, 150}, {50, 50}, {10, 190}}, 30.0);

  Domain small = Domain::rectangle(100, 100);
  net.rebind_domain(&small);
  for (int i = 0; i < net.size(); ++i)
    EXPECT_TRUE(small.contains(net.position(i))) << "node " << i;
  EXPECT_EQ(net.position(1), Vec2(50, 50));  // already feasible: unmoved

  // The grid was invalidated: queries reflect the projected positions.
  const auto hits = net.nodes_within({100, 100}, 5.0);
  EXPECT_FALSE(hits.empty());

  // A domain with a hole pushes nodes out of the blocked region too.
  Domain holed = Domain::rectangle(100, 100).with_rect_hole({40, 40}, {60, 60});
  net.rebind_domain(&holed);
  for (int i = 0; i < net.size(); ++i)
    EXPECT_TRUE(holed.contains(net.position(i))) << "node " << i;
}

TEST(Network, MoveInvalidatesQueries) {
  Domain d = Domain::rectangle(100, 100);
  Network net(&d, {{10, 10}, {90, 90}}, 15.0);
  EXPECT_TRUE(net.one_hop_neighbors(0).empty());
  net.set_position(1, {20, 10});
  auto nb = net.one_hop_neighbors(0);
  ASSERT_EQ(nb.size(), 1u);
  EXPECT_EQ(nb[0], 1);
}

TEST(Network, ConcurrentQueriesAfterMoveAgree) {
  // The lazy grid may be rebuilt by whichever reader arrives first; all
  // concurrent readers must see the post-move positions.
  Domain d = Domain::rectangle(200, 200);
  Rng rng(19);
  Network net(&d, deploy_uniform(d, 60, rng), 40.0);
  (void)net.one_hop_neighbors(0);  // build once
  for (int i = 0; i < net.size(); ++i) {
    const Vec2 p = net.position(i);
    net.set_position(i, {p.x + 1.0, p.y + 1.0});  // grid now stale
  }

  std::vector<std::vector<int>> results(8);
  {
    std::vector<std::thread> readers;
    for (int t = 0; t < 8; ++t) {
      readers.emplace_back([&net, &results, t] {
        results[static_cast<std::size_t>(t)] =
            net.nodes_within({100, 100}, 60.0);
      });
    }
    for (std::thread& t : readers) t.join();
  }
  for (int t = 1; t < 8; ++t)
    EXPECT_EQ(results[static_cast<std::size_t>(t)], results[0]);

  // And they match a serial query against the same positions.
  EXPECT_EQ(net.nodes_within({100, 100}, 60.0), results[0]);
}

// ---------------------------------------------------------- deployment ----

TEST(Deployment, UniformInsideDomain) {
  Domain d = Domain::lshape(100, 100);
  Rng rng(2);
  auto pts = deploy_uniform(d, 200, rng);
  EXPECT_EQ(pts.size(), 200u);
  for (Vec2 p : pts) EXPECT_TRUE(d.contains(p));
}

TEST(Deployment, CornerClusterIsClustered) {
  Domain d = Domain::rectangle(1000, 1000);
  Rng rng(3);
  auto pts = deploy_corner(d, 100, rng, 0.12);
  for (Vec2 p : pts) {
    EXPECT_LE(p.x, 120.0 + 1e-9);
    EXPECT_LE(p.y, 120.0 + 1e-9);
  }
}

TEST(Deployment, GaussianStaysInDomain) {
  Domain d = Domain::rectangle(100, 100);
  Rng rng(4);
  auto pts = deploy_gaussian(d, 150, {50, 50}, 20.0, rng);
  EXPECT_EQ(pts.size(), 150u);
  for (Vec2 p : pts) EXPECT_TRUE(d.contains(p));
}

TEST(Deployment, TriangularLatticeSpacing) {
  Domain d = Domain::rectangle(100, 100);
  auto pts = triangular_lattice(d, 10.0);
  ASSERT_GT(pts.size(), 50u);
  // Nearest-neighbour spacing ~ 10 for interior points.
  SpatialGrid grid(pts, 10.0);
  auto nb = grid.k_nearest(pts[pts.size() / 2], 2);
  const double dmin = geom::dist(pts[static_cast<size_t>(nb[1])], pts[pts.size() / 2]);
  EXPECT_NEAR(dmin, 10.0, 0.5);
}

TEST(Deployment, SquareLatticeCount) {
  Domain d = Domain::rectangle(100, 100);
  auto pts = square_lattice(d, 10.0);
  // ~11x11 grid.
  EXPECT_GE(pts.size(), 100u);
  EXPECT_LE(pts.size(), 145u);
}

TEST(Deployment, StackedPlacesKPerAnchor) {
  Rng rng(5);
  auto pts = stacked({{0, 0}, {10, 10}}, 3, rng, 1e-3);
  EXPECT_EQ(pts.size(), 6u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(geom::dist(pts[i], {0, 0}), 0.0, 3e-3);
}

// ---------------------------------------------------------------- comm ----

TEST(Comm, HopDistancesLinearChain) {
  Domain d = Domain::rectangle(100, 10);
  Network net(&d, {{0, 5}, {10, 5}, {20, 5}, {30, 5}, {90, 5}}, 11.0);
  CommModel comm(net);
  auto hd = comm.hop_distances(0);
  EXPECT_EQ(hd[0], 0);
  EXPECT_EQ(hd[1], 1);
  EXPECT_EQ(hd[2], 2);
  EXPECT_EQ(hd[3], 3);
  EXPECT_EQ(hd[4], -1);  // unreachable
  EXPECT_FALSE(comm.connected());
}

TEST(Comm, MaxHopsTruncates) {
  Domain d = Domain::rectangle(100, 10);
  Network net(&d, {{0, 5}, {10, 5}, {20, 5}, {30, 5}}, 11.0);
  CommModel comm(net);
  auto hd = comm.hop_distances(0, 2);
  EXPECT_EQ(hd[2], 2);
  EXPECT_EQ(hd[3], -1);
}

TEST(Comm, GatherRespectsRhoAndHops) {
  Domain d = Domain::rectangle(100, 10);
  Network net(&d, {{0, 5}, {10, 5}, {20, 5}, {30, 5}}, 11.0);
  CommModel comm(net);
  CommStats stats;
  // rho = 25: nodes at 10 and 20 qualify by distance, 30 does not.
  auto got = comm.gather(0, 25.0, 3, &stats);
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
  EXPECT_EQ(stats.gather_requests, 1u);
  EXPECT_EQ(stats.node_reports, 2u);
  // Hop cap of 1 restricts to the one-hop neighbour even though rho reaches
  // further.
  auto got1 = comm.gather(0, 25.0, 1, &stats);
  EXPECT_EQ(got1, (std::vector<int>{1}));
}

TEST(Comm, ConnectedDenseNetwork) {
  Domain d = Domain::rectangle(50, 50);
  Rng rng(6);
  Network net(&d, deploy_uniform(d, 80, rng), 15.0);
  CommModel comm(net);
  EXPECT_TRUE(comm.connected());
}

// ------------------------------------------------------------ boundary ----

TEST(Boundary, ClusterEdgeDetected) {
  Domain d = Domain::rectangle(1000, 1000);
  // Dense 5x5 block of nodes in the middle of a big empty domain.
  std::vector<Vec2> pts;
  for (int y = 0; y < 5; ++y)
    for (int x = 0; x < 5; ++x)
      pts.push_back({500.0 + x * 10.0, 500.0 + y * 10.0});
  Network net(&d, pts, 16.0);
  BoundaryConfig cfg;
  cfg.gap_threshold = M_PI / 2.0;
  cfg.area_margin = 1.0;  // far from the area boundary here
  auto info = detect_all_boundaries(net, cfg);
  // Corner node of the block: definitely boundary.
  EXPECT_TRUE(info[0].network_boundary);
  // Center node (index 12): surrounded on all sides.
  EXPECT_FALSE(info[12].network_boundary);
  EXPECT_TRUE(net.node(0).boundary);
  EXPECT_FALSE(net.node(12).boundary);
}

TEST(Boundary, AreaBoundaryByProximity) {
  Domain d = Domain::rectangle(100, 100);
  Network net(&d, {{2, 50}, {50, 50}}, 10.0);
  BoundaryConfig cfg;
  cfg.area_margin = 5.0;
  EXPECT_TRUE(detect_boundary(net, 0, cfg).area_boundary);
  EXPECT_FALSE(detect_boundary(net, 1, cfg).area_boundary);
}

TEST(Boundary, IsolatedNodeIsBoundary) {
  Domain d = Domain::rectangle(100, 100);
  Network net(&d, {{50, 50}}, 10.0);
  EXPECT_TRUE(detect_boundary(net, 0).network_boundary);
}

// -------------------------------------------------------- localization ----

TEST(Localization, PerfectFrameMatchesRelativePositions) {
  Domain d = Domain::rectangle(100, 100);
  Network net(&d, {{10, 10}, {20, 10}, {10, 30}}, 50.0);
  Rng rng(7);
  auto rel = local_frame(net, 0, {1, 2}, {}, rng);
  ASSERT_EQ(rel.size(), 2u);
  EXPECT_NEAR(rel[0].x, 10.0, 1e-12);
  EXPECT_NEAR(rel[0].y, 0.0, 1e-12);
  EXPECT_NEAR(rel[1].x, 0.0, 1e-12);
  EXPECT_NEAR(rel[1].y, 20.0, 1e-12);
}

TEST(Localization, NoisePerturbsButPreservesScale) {
  Domain d = Domain::rectangle(100, 100);
  Network net(&d, {{10, 10}, {60, 10}}, 100.0);
  Rng rng(8);
  LocalFrameConfig cfg;
  cfg.range_noise = 0.05;
  Summary err;
  for (int i = 0; i < 200; ++i) {
    auto rel = local_frame(net, 0, {1}, cfg, rng);
    err.add(rel[0].norm());
  }
  EXPECT_NEAR(err.mean(), 50.0, 2.0);
  EXPECT_GT(err.stddev(), 0.5);
}

// -------------------------------------------------------------- energy ----

TEST(Energy, QuadraticModel) {
  EXPECT_NEAR(sensing_energy(2.0), 4.0 * M_PI, 1e-12);
  EXPECT_NEAR(sensing_energy(0.0), 0.0, 1e-12);
}

TEST(Energy, LoadReportAggregates) {
  Domain d = Domain::rectangle(100, 100);
  Network net(&d, {{10, 10}, {20, 20}, {30, 30}}, 10.0);
  net.set_sensing_range(0, 1.0);
  net.set_sensing_range(1, 2.0);
  net.set_sensing_range(2, 3.0);
  LoadReport rep = load_report(net);
  EXPECT_NEAR(rep.max_load, 9.0 * M_PI, 1e-9);
  EXPECT_NEAR(rep.min_load, M_PI, 1e-9);
  EXPECT_NEAR(rep.total_load, 14.0 * M_PI, 1e-9);
  EXPECT_GT(rep.fairness, 0.5);
  EXPECT_LT(rep.fairness, 1.0);
}

TEST(Energy, PerfectBalanceFairnessOne) {
  Domain d = Domain::rectangle(100, 100);
  Network net(&d, {{10, 10}, {20, 20}}, 10.0);
  net.set_sensing_range(0, 2.5);
  net.set_sensing_range(1, 2.5);
  EXPECT_NEAR(load_report(net).fairness, 1.0, 1e-12);
}

TEST(Energy, LoadReportSingleNode) {
  Domain d = Domain::rectangle(100, 100);
  Network net(&d, {{50, 50}}, 10.0);
  net.set_sensing_range(0, 3.0);
  LoadReport rep = load_report(net);
  EXPECT_NEAR(rep.max_load, 9.0 * M_PI, 1e-9);
  EXPECT_NEAR(rep.min_load, 9.0 * M_PI, 1e-9);
  EXPECT_NEAR(rep.total_load, 9.0 * M_PI, 1e-9);
  EXPECT_NEAR(rep.fairness, 1.0, 1e-12);
}

TEST(Energy, LoadReportAllZeroRanges) {
  // Freshly constructed nodes have range 0: loads are all zero and the
  // report must stay finite (no 0/0 fairness).
  Domain d = Domain::rectangle(100, 100);
  Network net(&d, {{10, 10}, {20, 20}, {30, 30}}, 10.0);
  LoadReport rep = load_report(net);
  EXPECT_EQ(rep.max_load, 0.0);
  EXPECT_EQ(rep.min_load, 0.0);
  EXPECT_EQ(rep.total_load, 0.0);
  EXPECT_TRUE(std::isfinite(rep.fairness));
}

TEST(Energy, LoadReportMixedZeroAndPositive) {
  Domain d = Domain::rectangle(100, 100);
  Network net(&d, {{10, 10}, {20, 20}}, 10.0);
  net.set_sensing_range(0, 0.0);
  net.set_sensing_range(1, 2.0);
  LoadReport rep = load_report(net);
  EXPECT_EQ(rep.min_load, 0.0);
  EXPECT_NEAR(rep.max_load, 4.0 * M_PI, 1e-9);
  EXPECT_TRUE(std::isfinite(rep.fairness));
  EXPECT_NEAR(rep.fairness, 0.5, 1e-9);  // Jain's index of {0, x}
}

TEST(Energy, LoadReportEmptyNetworkIsDefault) {
  Domain d = Domain::rectangle(100, 100);
  Network net(&d, {}, 10.0);
  LoadReport rep = load_report(net);
  EXPECT_EQ(rep.total_load, 0.0);
  // No nodes -> no fairness: NaN (JSON null), the shared empty-aggregate
  // convention, not a fabricated 1.0.
  EXPECT_TRUE(std::isnan(rep.fairness));
}

}  // namespace
}  // namespace laacad::wsn
